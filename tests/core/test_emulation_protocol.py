"""Every repro.core emulation satisfies the Emulation protocol, and
EmulationSpec rebuilds identical deployments across a pickle boundary."""

import pickle

import pytest

from repro.core import (
    Emulation,
    EmulationSpec,
    algorithm_names,
)
from repro.workloads import run_workload, write_sequential_workload

#: algorithm name -> spec kwargs that build a small deployment
SPECS = {
    "ws-register": dict(k=2, n=5, f=2),
    "abd": dict(n=3, f=1),
    "cas-abd": dict(n=3, f=1),
    "replicated-maxreg": dict(k=2, n=3, f=1),
    "collect-maxreg": dict(k=2),
    "ft-maxreg": dict(n=3, f=1),
    "single-cas": dict(),
}


class TestProtocolConformance:
    def test_every_registered_algorithm_is_covered(self):
        assert set(SPECS) == set(algorithm_names())

    @pytest.mark.parametrize("algorithm", sorted(SPECS))
    def test_built_emulation_satisfies_protocol(self, algorithm):
        emu = EmulationSpec.make(algorithm, **SPECS[algorithm]).build()
        assert isinstance(emu, Emulation)

    @pytest.mark.parametrize("algorithm", sorted(SPECS))
    def test_surface_is_usable(self, algorithm):
        emu = EmulationSpec.make(algorithm, **SPECS[algorithm]).build()
        assert emu.kernel is not None
        assert emu.object_map is not None
        assert emu.history is not None
        assert emu.system is not None
        emu.add_writer(0)
        emu.add_reader()

    def test_arbitrary_object_is_not_an_emulation(self):
        assert not isinstance(object(), Emulation)


class TestEmulationSpec:
    def test_make_routes_unknown_kwargs_to_options(self):
        spec = EmulationSpec.make("abd", n=3, f=1, write_back=False)
        assert spec.n == 3 and spec.f == 1
        assert spec.options == (("write_back", False),)
        assert spec.build().write_back is False

    def test_spec_is_hashable_and_picklable(self):
        spec = EmulationSpec.make("ws-register", k=2, n=5, f=2, seed=3)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert hash(clone) == hash(spec)

    def test_unknown_algorithm_raises_with_known_names(self):
        with pytest.raises(ValueError, match="ws-register"):
            EmulationSpec("made-up").build()

    def test_seeded_specs_rebuild_identical_runs(self):
        workload = write_sequential_workload(k=2, writes_per_writer=3)
        spec = EmulationSpec.make("ws-register", k=2, n=5, f=2, seed=11)
        first = run_workload(spec, workload)
        second = run_workload(spec, workload)
        assert first.history.to_dicts() == second.history.to_dicts()
        assert first.total_steps == second.total_steps

    def test_run_workload_accepts_spec_directly(self):
        workload = write_sequential_workload(k=1, writes_per_writer=2)
        report = run_workload(
            EmulationSpec.make("abd", n=3, f=1, seed=0), workload
        )
        assert report.emulation is not None
        assert isinstance(report.emulation, Emulation)
