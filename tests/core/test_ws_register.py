"""Tests for Algorithm 2 (the WS-Regular k-register) — failure-free runs."""

import pytest

from tests.conftest import drive_concurrent, drive_sequential

from repro.consistency.ws import check_ws_regular, check_ws_safe
from repro.core import bounds
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler


def _emulation(k=3, n=7, f=2, seed=0):
    return WSRegisterEmulation(
        k=k, n=n, f=f, scheduler=RandomScheduler(seed)
    )


class TestBasicOperation:
    def test_read_after_write(self):
        emu = _emulation()
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        drive_sequential(
            emu.system,
            [(writer, "write", ("hello",)), (reader, "read", ())],
        )
        assert emu.history.reads[0].result == "hello"

    def test_read_initial_value(self):
        emu = WSRegisterEmulation(
            k=1, n=3, f=1, initial_value="v0", scheduler=RandomScheduler(1)
        )
        reader = emu.add_reader()
        drive_sequential(emu.system, [(reader, "read", ())])
        assert emu.history.reads[0].result == "v0"

    def test_multiple_writers_take_turns(self):
        emu = _emulation(k=3)
        writers = [emu.add_writer(i) for i in range(3)]
        reader = emu.add_reader()
        script = []
        for round_index in range(2):
            for w, writer in enumerate(writers):
                script.append((writer, "write", (f"w{w}r{round_index}",)))
                script.append((reader, "read", ()))
        drive_sequential(emu.system, script)
        results = [r.result for r in emu.history.reads]
        assert results == [
            "w0r0", "w1r0", "w2r0", "w0r1", "w1r1", "w2r1",
        ]

    def test_same_writer_writes_repeatedly(self):
        """Covered-register avoidance: the writer's second write must skip
        registers still covered by its first write and still complete."""
        emu = _emulation(k=1, n=3, f=1)
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        script = [(writer, "write", (f"v{i}",)) for i in range(5)]
        script.append((reader, "read", ()))
        drive_sequential(emu.system, script)
        assert emu.history.reads[0].result == "v4"


class TestConsistency:
    @pytest.mark.parametrize("seed", range(5))
    def test_ws_regular_sequential_runs(self, seed):
        emu = _emulation(k=3, seed=seed)
        writers = [emu.add_writer(i) for i in range(3)]
        reader = emu.add_reader()
        script = []
        for i in range(2):
            for w, writer in enumerate(writers):
                script.append((writer, "write", (f"w{w}-{i}",)))
                script.append((reader, "read", ()))
        drive_sequential(emu.system, script)
        assert check_ws_regular(emu.history, cross_check=True) == []
        assert check_ws_safe(emu.history) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_ws_regular_with_concurrent_reads(self, seed):
        emu = _emulation(k=2, n=5, f=2, seed=seed)
        writers = [emu.add_writer(i) for i in range(2)]
        readers = [emu.add_reader() for _ in range(3)]
        # Writes sequential; readers all concurrent with each write.
        for i, writer in enumerate(writers):
            writer.enqueue("write", f"w{i}")
            for reader in readers:
                reader.enqueue("read")
            result = emu.system.run_to_quiescence()
            assert result.satisfied
        assert check_ws_regular(emu.history, cross_check=True) == []

    def test_write_only_run_is_write_sequential(self):
        emu = _emulation(k=2)
        writers = [emu.add_writer(i) for i in range(2)]
        drive_sequential(
            emu.system,
            [(writers[i % 2], "write", (f"v{i}",)) for i in range(4)],
        )
        assert emu.history.is_write_sequential()
        assert emu.history.is_write_only()


class TestResourceComplexity:
    @pytest.mark.parametrize(
        "k,n,f",
        [(1, 3, 1), (2, 5, 2), (3, 7, 2), (5, 6, 2), (4, 13, 3)],
    )
    def test_uses_exactly_theorem3_registers(self, k, n, f):
        emu = WSRegisterEmulation(k=k, n=n, f=f)
        assert emu.layout.total_registers == bounds.register_upper_bound(
            k, n, f
        )
        assert emu.object_map.n_objects == emu.layout.total_registers

    def test_rejects_reader_writing(self):
        emu = _emulation()
        reader = emu.add_reader()
        reader.enqueue("write", "nope")
        with pytest.raises(RuntimeError):
            emu.system.run_to_quiescence()

    def test_duplicate_writer_rejected(self):
        emu = _emulation()
        emu.add_writer(0)
        with pytest.raises(ValueError):
            emu.add_writer(0)


class TestWaitFreedomBookkeeping:
    def test_writer_leaves_at_most_f_pending(self):
        """Observation 3: a writer with no in-flight operation covers at
        most f base registers."""
        emu = _emulation(k=2, n=5, f=2, seed=3)
        writer = emu.add_writer(0)
        for i in range(4):
            writer.enqueue("write", f"v{i}")
            result = emu.system.run_to_quiescence()
            assert result.satisfied
            pending = [
                op
                for op in emu.kernel.pending.values()
                if op.is_mutator and op.client_id == writer.client_id
            ]
            assert len(pending) <= 2

    def test_timestamps_strictly_increase(self):
        emu = _emulation(k=2, n=5, f=2)
        writers = [emu.add_writer(i) for i in range(2)]
        drive_sequential(
            emu.system,
            [(writers[i % 2], "write", (f"v{i}",)) for i in range(4)],
        )
        # Inspect the registers: every stored TSVal for a later write must
        # carry a strictly larger timestamp (Lemma 6).
        stored = [
            obj.value
            for obj in emu.object_map.objects
            if obj.value.ts > 0
        ]
        assert stored, "no writes landed"
        by_value = {}
        for tsval in stored:
            by_value.setdefault(tsval.val, set()).add(tsval.ts)
        order = sorted(by_value, key=lambda v: min(by_value[v]))
        last_ts = 0
        for value in order:
            ts = min(by_value[value])
            assert ts >= last_ts
            last_ts = ts
