"""Tests for the experiment registry."""

import pytest

from repro.experiments import (
    ExperimentResult,
    list_experiments,
    run_experiment,
)

ALL_IDS = ["ABL", "B1", "F1", "L1", "OQ", "SEP", "T1", "T1-sweep", "TH1",
           "TH2", "TH5", "TH6", "TH7", "TH8"]


class TestRegistry:
    def test_all_ids_registered(self):
        assert list_experiments() == ALL_IDS

    def test_unknown_id(self):
        with pytest.raises(ValueError):
            run_experiment("T99")

    def test_render_includes_title_and_rows(self):
        result = run_experiment("TH2", k_values=(1, 2))
        text = result.render()
        assert "Theorem 2" in text
        assert text.count("\n") >= 3

    def test_to_dict_is_json_serializable(self):
        import json

        result = run_experiment("TH2", k_values=(1, 2))
        payload = json.dumps(result.to_dict())
        decoded = json.loads(payload)
        assert decoded["experiment_id"] == "TH2"
        assert decoded["rows"]

    def test_to_dict_stringifies_odd_cells(self):
        result = run_experiment("TH6", k=2, f=1)
        import json

        json.dumps(result.to_dict())  # ServerId cells become strings


class TestSmallInstances:
    """Every experiment runs end-to-end at reduced size."""

    def test_t1(self):
        result = run_experiment("T1", k=2, n=5, f=2)
        assert [row[0] for row in result.rows] == [
            "max-register",
            "cas",
            "register",
        ]
        for row in result.rows:
            assert row[1] <= row[2] == row[3]

    def test_t1_sweep(self):
        result = run_experiment("T1-sweep", n=5, f=2, k_max=3)
        assert len(result.rows) == 3

    def test_f1(self):
        result = run_experiment("F1", k=2, n=5, f=2)
        assert sum(row[1] for row in result.rows) == 10

    def test_l1(self):
        result = run_experiment("L1", k=2, n=5, f=2)
        assert [row[1] for row in result.rows] == [2, 4]

    def test_th1(self):
        result = run_experiment("TH1", k=2, f=1)
        gaps = [row[4] for row in result.rows]
        assert all(g >= 0 for g in gaps)

    def test_th2(self):
        result = run_experiment("TH2", k_values=(1, 3))
        assert all(row[1] == row[2] for row in result.rows)

    def test_th5(self):
        result = run_experiment("TH5", f_values=(1,))
        assert result.rows[0][3] == "WS-Safety VIOLATED"

    def test_th6(self):
        result = run_experiment("TH6", k=2, f=1)
        non_f = [row for row in result.rows if row[2] == "no"]
        assert all(row[3] >= 2 for row in non_f)

    def test_th7(self):
        result = run_experiment("TH7", k=2, f=1, capacities=(1, 4))
        assert all(row[2] >= row[1] for row in result.rows)

    def test_th8(self):
        result = run_experiment("TH8", k=2, n=5, f=2)
        assert all(row[1] == 1 for row in result.rows)

    def test_b1(self):
        result = run_experiment("B1", update_counts=(1, 2))
        assert result.rows[0][1] <= 2

    def test_sep(self):
        result = run_experiment("SEP", k=3, f=1)
        register_cov = [row[1] for row in result.rows]
        maxreg_cov = [row[2] for row in result.rows]
        assert register_cov == [1, 2, 3]
        assert all(c <= 3 for c in maxreg_cov)  # saturates at n = 3

    def test_oq(self):
        result = run_experiment("OQ", k=2, n=5, f=2, samples=3)
        (row,) = result.rows
        assert row == [3, 0, 0]

    def test_abl(self):
        result = run_experiment("ABL")
        outcomes = {row[0]: row[1] for row in result.rows}
        assert outcomes["Algorithm 2 (intact)"] == "SAFE"
        assert outcomes["no cover avoidance"] == "WS-Safety VIOLATED"
