"""Shared test helpers.

``drive_sequential`` runs a list of (runtime, op, args) invocations one at
a time to quiescence — producing write-sequential histories — and returns
the history.  ``ToyProtocol`` is a minimal single-object client used by
the kernel-level tests.
"""

from __future__ import annotations

import pytest

from repro.sim.client import ClientProtocol
from repro.sim.ids import ObjectId
from repro.sim.objects import OpKind


class ToyProtocol(ClientProtocol):
    """Single-register client: op_write/op_read against ObjectId(0)."""

    def __init__(self, object_id: ObjectId = ObjectId(0)):
        self.object_id = object_id
        self.results = {}

    def op_write(self, ctx, value):
        op = ctx.trigger(self.object_id, OpKind.WRITE, value)
        yield lambda: op in self.results
        self.results.pop(op)
        return "ack"

    def op_read(self, ctx):
        op = ctx.trigger(self.object_id, OpKind.READ)
        yield lambda: op in self.results
        return self.results.pop(op)

    def on_response(self, ctx, op):
        self.results[op.op_id] = op.result


def drive_sequential(system, invocations, max_steps: int = 200_000):
    """Run invocations one at a time; returns the system history.

    ``invocations`` is an iterable of ``(runtime, name, args)``.
    """
    for runtime, name, args in invocations:
        runtime.enqueue(name, *args)
        result = system.run_to_quiescence(max_steps=max_steps)
        assert result.satisfied, f"{name}{args} did not complete: {result}"
    return system.history


def drive_concurrent(system, invocations, max_steps: int = 200_000):
    """Enqueue all invocations, then run to quiescence."""
    for runtime, name, args in invocations:
        runtime.enqueue(name, *args)
    result = system.run_to_quiescence(max_steps=max_steps)
    assert result.satisfied, f"concurrent round did not complete: {result}"
    return system.history
