"""Tests for the system builder."""

import pytest

from repro.sim.ids import ObjectId, ServerId
from repro.sim.objects import AtomicRegister, CASObject, MaxRegister
from repro.sim.system import build_system


class TestBuildSystem:
    def test_placements_respected(self):
        system = build_system(
            3,
            [
                (0, "register", "a"),
                (1, "max-register", 0),
                (2, "cas", 0),
                (0, "register", "b"),
            ],
        )
        omap = system.object_map
        assert isinstance(omap.object(ObjectId(0)), AtomicRegister)
        assert isinstance(omap.object(ObjectId(1)), MaxRegister)
        assert isinstance(omap.object(ObjectId(2)), CASObject)
        assert omap.server_of(ObjectId(3)) == ServerId(0)
        assert omap.object(ObjectId(0)).value == "a"

    def test_counts(self):
        system = build_system(2, [(0, "register", None)] * 4)
        assert system.n_servers == 2
        assert system.n_objects == 4

    def test_out_of_range_server_rejected(self):
        with pytest.raises(ValueError):
            build_system(1, [(5, "register", None)])

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            build_system(0, [])

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            build_system(1, [(0, "stack", None)])

    def test_history_attached(self):
        system = build_system(1, [(0, "register", None)])
        assert system.history in system.kernel.listeners

    def test_custom_history_respected(self):
        """Regression: an empty History is falsy (len == 0); the builder
        must not silently replace a caller-provided recorder."""
        from repro.sim.history import History

        custom = History(write_name="write_max", read_name="read_max")
        system = build_system(1, [(0, "register", None)], history=custom)
        assert system.history is custom
        assert custom in system.kernel.listeners
