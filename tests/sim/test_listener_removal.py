"""remove_listener reverses pre-bound dispatch; meters don't leak."""

import pytest

from tests.conftest import ToyProtocol

from repro.analysis.resources import StepMeter
from repro.core import EmulationSpec
from repro.sim.events import EventListener
from repro.sim.ids import ClientId
from repro.sim.kernel import _HOOK_ATTRS
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system
from repro.workloads import run_workload, write_sequential_workload
from repro.workloads.generators import Invocation, Workload


def _system(seed=0):
    return build_system(
        1, [(0, "register", None)], scheduler=RandomScheduler(seed)
    )


class _StepCounter(EventListener):
    def __init__(self):
        self.steps = 0

    def on_step(self, event):
        self.steps += 1


class TestRemoveListener:
    def test_removed_listener_receives_no_further_events(self):
        system = _system()
        counter = _StepCounter()
        system.kernel.add_listener(counter)
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.run_to_quiescence()
        seen = counter.steps
        assert seen > 0

        system.kernel.remove_listener(counter)
        client.enqueue("write", 2)
        system.run_to_quiescence()
        assert counter.steps == seen

    def test_prebound_hook_lists_are_emptied(self):
        system = _system()
        counter = _StepCounter()
        system.kernel.add_listener(counter)
        assert any(getattr(system.kernel, attr) for _, attr in _HOOK_ATTRS)
        system.kernel.remove_listener(counter)
        assert counter not in system.kernel.listeners
        for _, attr in _HOOK_ATTRS:
            subs = getattr(system.kernel, attr)
            assert all(getattr(s, "__self__", None) is not counter for s in subs)

    def test_removing_unknown_listener_raises(self):
        system = _system()
        with pytest.raises(ValueError):
            system.kernel.remove_listener(_StepCounter())

    def test_other_listeners_survive_removal(self):
        system = _system()
        first, second = _StepCounter(), _StepCounter()
        system.kernel.add_listener(first)
        system.kernel.add_listener(second)
        system.kernel.remove_listener(first)
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.run_to_quiescence()
        assert first.steps == 0
        assert second.steps > 0


class TestRunnerDetachesMeters:
    def test_meters_detached_even_without_reuse(self):
        emu = EmulationSpec.make("ws-register", k=1, n=3, f=1).build()
        run_workload(emu, write_sequential_workload(k=1, writes_per_writer=1))
        assert not any(
            isinstance(listener, StepMeter)
            for listener in emu.kernel.listeners
        )

    def test_back_to_back_runs_do_not_accumulate_meters(self):
        """Before the fix, each run_workload left its three meters attached
        forever, so repeated runs piled up listeners (and leaked work into
        stale meters).  History listeners installed by the emulation itself
        must survive untouched."""
        emu = EmulationSpec.make("ws-register", k=2, n=5, f=2, seed=0).build()
        baseline = list(emu.kernel.listeners)
        for writer in (0, 1):  # distinct clients; one emulation throughout
            workload = Workload(
                rounds=[[Invocation(("writer", writer), "write", (writer,))]]
            )
            run_workload(emu, workload)
        assert emu.kernel.listeners == baseline

    def test_meters_detached_on_failure_paths(self):
        emu = EmulationSpec.make("ws-register", k=1, n=3, f=1).build()
        baseline = list(emu.kernel.listeners)
        emu.add_writer(0)  # makes the runner's own add_writer(0) collide
        with pytest.raises(ValueError):
            run_workload(
                emu, write_sequential_workload(k=1, writes_per_writer=1)
            )
        assert emu.kernel.listeners == baseline
