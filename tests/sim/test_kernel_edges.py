"""Edge-case tests for kernel, client runtime, and listener plumbing."""

import pytest

from tests.conftest import ToyProtocol

from repro.sim.client import ClientProtocol, Context, TaskHandle
from repro.sim.events import EventListener
from repro.sim.ids import ClientId, ObjectId
from repro.sim.kernel import Environment, RunResult
from repro.sim.objects import OpKind
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


def _system(placements=None, seed=0):
    placements = placements or [(0, "register", None)]
    return build_system(1, placements, scheduler=RandomScheduler(seed))


class TestRunResult:
    def test_satisfied_only_for_until(self):
        assert RunResult(5, "until").satisfied
        for reason in ("quiescent", "blocked", "max_steps"):
            assert not RunResult(5, reason).satisfied


class TestRunUntil:
    def test_until_true_immediately_takes_zero_steps(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        result = system.kernel.run(until=lambda k: True)
        assert result.steps == 0
        assert result.satisfied

    def test_until_checked_after_max_steps(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        # The single permitted step completes nothing, but the predicate
        # may become true exactly at the boundary.
        result = system.kernel.run(
            max_steps=1, until=lambda k: k.time >= 1
        )
        assert result.satisfied


class TestTriggerValidation:
    def test_trigger_unsupported_kind_raises(self):
        system = _system([(0, "max-register", 0)])

        class Bad(ClientProtocol):
            def op_go(self, ctx):
                ctx.trigger(ObjectId(0), OpKind.WRITE, 1)  # not supported
                yield None

        client = system.add_client(ClientId(0), Bad())
        client.enqueue("go")
        with pytest.raises(ValueError):
            system.kernel.run(max_steps=5)


class TestListeners:
    class Counting(EventListener):
        def __init__(self):
            self.steps = 0
            self.triggers = 0
            self.responds = 0

        def on_step(self, time):
            self.steps += 1

        def on_trigger(self, event):
            self.triggers += 1

        def on_respond(self, event):
            self.responds += 1

    def test_counts_match_run(self):
        system = _system()
        listener = self.Counting()
        system.kernel.add_listener(listener)
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        client.enqueue("read")
        result = system.run_to_quiescence()
        assert listener.steps == system.kernel.time
        assert listener.triggers == 2
        assert listener.responds == 2

    def test_multiple_listeners_all_notified(self):
        system = _system()
        listeners = [self.Counting() for _ in range(3)]
        for listener in listeners:
            system.kernel.add_listener(listener)
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.run_to_quiescence()
        assert len({listener.steps for listener in listeners}) == 1


class TestContextHelpers:
    def test_all_done_and_count_done(self):
        done = TaskHandle("a", done=True)
        pending = TaskHandle("b", done=False)
        assert Context.all_done([done])()
        assert not Context.all_done([done, pending])()
        assert Context.count_done([done, pending], 1)()
        assert not Context.count_done([done, pending], 2)()

    def test_task_handle_wait(self):
        handle = TaskHandle("t")
        predicate = handle.wait()
        assert not predicate()
        handle.done = True
        assert predicate()

    def test_context_exposes_time_and_id(self):
        system = _system()

        observed = {}

        class Probe(ClientProtocol):
            def op_go(self, ctx):
                observed["client"] = ctx.client_id
                observed["time"] = ctx.time
                return None
                yield  # pragma: no cover

        client = system.add_client(ClientId(9), Probe())
        client.enqueue("go")
        system.run_to_quiescence()
        assert observed["client"] == ClientId(9)
        assert observed["time"] >= 0


class TestCrashedClientResponses:
    def test_response_to_crashed_client_not_delivered_to_protocol(self):
        system = _system()
        protocol = ToyProtocol()
        client = system.add_client(ClientId(0), protocol)
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))  # trigger in flight
        system.kernel.crash_client(ClientId(0))
        (op_id,) = list(system.kernel.pending)
        system.kernel.force_respond(op_id)
        # The write took effect but the protocol handler never ran.
        assert system.object_map.object(ObjectId(0)).value == 1
        assert op_id not in protocol.results


class TestEnvironmentDefaults:
    def test_default_environment_allows_everything(self):
        env = Environment()
        assert env.allows(None, None)

    def test_default_environment_does_not_unstall(self):
        assert Environment().on_stall(None) is False


class TestKernelStats:
    def test_stats_snapshot(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        stats = system.kernel.stats()
        assert stats["clients"] == 1
        assert stats["objects"] == 1
        assert stats["ops_triggered"] == 1
        assert stats["ops_pending"] == 1
        assert stats["covering_writes"] == 1
        system.run_to_quiescence()
        stats = system.kernel.stats()
        assert stats["ops_pending"] == 0
        assert stats["covering_writes"] == 0

    def test_stats_track_crashes(self):
        from repro.sim.ids import ServerId

        system = _system()
        system.add_client(ClientId(0), ToyProtocol())
        system.kernel.crash_client(ClientId(0))
        system.kernel.crash_server(ServerId(0))
        stats = system.kernel.stats()
        assert stats["crashed_clients"] == 1
        assert stats["crashed_servers"] == 1
