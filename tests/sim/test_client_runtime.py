"""Tests for the client coroutine runtime: sub-tasks, waits, handlers."""

import pytest

from repro.sim.client import ClientProtocol
from repro.sim.ids import ClientId, ObjectId
from repro.sim.objects import OpKind
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


class SpawningProtocol(ClientProtocol):
    """Writes to several registers concurrently via spawned tasks."""

    def __init__(self, n_objects, quorum):
        self.n_objects = n_objects
        self.quorum = quorum
        self.results = {}

    def _write_one(self, ctx, index, value):
        op = ctx.trigger(ObjectId(index), OpKind.WRITE, value)
        yield lambda: op in self.results
        return self.results.pop(op)

    def op_write_all(self, ctx, value):
        handles = [
            ctx.spawn(self._write_one(ctx, i, value), name=f"w{i}")
            for i in range(self.n_objects)
        ]
        yield ctx.count_done(handles, self.quorum)
        return sum(1 for h in handles if h.done)

    def on_response(self, ctx, op):
        self.results[op.op_id] = op.result


def _system(n_objects=3, seed=0):
    placements = [(0, "register", None) for _ in range(n_objects)]
    return build_system(1, placements, scheduler=RandomScheduler(seed))


class TestSubTasks:
    def test_quorum_wait_returns_after_quorum(self):
        system = _system(3)
        client = system.add_client(
            ClientId(0), SpawningProtocol(n_objects=3, quorum=2)
        )
        client.enqueue("write_all", "x")
        result = system.run_to_quiescence()
        assert result.satisfied
        assert system.history.all_ops()[0].result >= 2

    def test_all_tasks_cleared_after_return(self):
        system = _system(3)
        client = system.add_client(
            ClientId(0), SpawningProtocol(n_objects=3, quorum=3)
        )
        client.enqueue("write_all", "x")
        system.run_to_quiescence()
        assert client.tasks == []
        assert client.idle

    def test_spawn_outside_operation_rejected(self):
        system = _system(1)
        protocol = SpawningProtocol(1, 1)
        client = system.add_client(ClientId(0), protocol)

        def dummy():
            yield None

        with pytest.raises(RuntimeError):
            client.spawn(dummy(), "stray")


class TestCoroutineContract:
    class BadYield(ClientProtocol):
        def op_bad(self, ctx):
            yield 42

    def test_non_predicate_yield_rejected(self):
        system = _system(1)
        client = system.add_client(ClientId(0), self.BadYield())
        client.enqueue("bad")
        with pytest.raises(TypeError):
            system.kernel.run(max_steps=10)

    class NoSuchOp(ClientProtocol):
        pass

    def test_unknown_operation_rejected(self):
        system = _system(1)
        client = system.add_client(ClientId(0), self.NoSuchOp())
        client.enqueue("nope")
        with pytest.raises(ValueError):
            system.kernel.run(max_steps=10)

    class ImmediateReturn(ClientProtocol):
        def op_noop(self, ctx):
            return "done"
            yield  # pragma: no cover — makes this a generator

    def test_operation_returning_without_waiting(self):
        system = _system(1)
        client = system.add_client(ClientId(0), self.ImmediateReturn())
        client.enqueue("noop")
        result = system.run_to_quiescence()
        assert result.satisfied
        assert system.history.all_ops()[0].result == "done"


class TestProgramQueue:
    class Echo(ClientProtocol):
        def op_echo(self, ctx, value):
            return value
            yield  # pragma: no cover

    def test_operations_run_in_fifo_order(self):
        system = _system(1)
        client = system.add_client(ClientId(0), self.Echo())
        for value in ["a", "b", "c"]:
            client.enqueue("echo", value)
        system.run_to_quiescence()
        results = [op.result for op in system.history.all_ops()]
        assert results == ["a", "b", "c"]

    def test_crash_clears_program(self):
        system = _system(1)
        client = system.add_client(ClientId(0), self.Echo())
        client.enqueue("echo", "x")
        client.crash()
        assert not client.enabled()
        assert not client.program
