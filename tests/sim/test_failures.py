"""Tests for crash plans."""

from tests.conftest import ToyProtocol

from repro.sim.failures import CrashPlan
from repro.sim.ids import ClientId, ServerId
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


def _system(seed=0):
    return build_system(
        2,
        [(0, "register", None), (1, "register", None)],
        scheduler=RandomScheduler(seed),
    )


class TestCrashAtStep:
    def test_server_crash_at_step(self):
        system = _system()
        CrashPlan().crash_server_at(1, ServerId(1)).install(system.kernel)
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        client.enqueue("read")
        result = system.run_to_quiescence()
        # Object 0 lives on server 0, unaffected.
        assert result.satisfied
        assert system.object_map.server(ServerId(1)).crashed

    def test_client_crash_at_step(self):
        system = _system()
        CrashPlan().crash_client_at(1, ClientId(0)).install(system.kernel)
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        client.enqueue("write", 2)
        system.kernel.run(max_steps=100)
        assert client.crashed

    def test_crash_not_before_step(self):
        system = _system()
        CrashPlan().crash_server_at(50, ServerId(0)).install(system.kernel)
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.run_to_quiescence(max_steps=10)
        assert not system.object_map.server(ServerId(0)).crashed


class TestCrashOnPredicate:
    def test_crash_when_value_written(self):
        system = _system()

        def value_landed(kernel):
            return kernel.object_map.object(
                kernel.object_map.objects_on(ServerId(0))[0]
            ).value == 1

        CrashPlan().crash_server_when(value_landed, ServerId(0)).install(
            system.kernel
        )
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.kernel.run(max_steps=200)
        assert system.object_map.server(ServerId(0)).crashed

    def test_predicate_fires_once(self):
        system = _system()
        plan = CrashPlan().crash_server_when(lambda k: True, ServerId(0))
        plan.install(system.kernel)
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.kernel.run(max_steps=50)
        assert all(entry.fired for entry in plan._on_predicate)
