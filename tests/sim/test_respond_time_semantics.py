"""Pin the respond-time semantics (Assumption 1) in both directions.

Operations take effect at their *respond* step: a read triggered before
a write can still observe it (the read responds later), and a write
triggered first can land last, erasing newer values.  These semantics are
exactly the adversary's leverage, so they get their own tests.
"""

from tests.conftest import ToyProtocol

from repro.sim.ids import ClientId, ObjectId
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


def _system():
    return build_system(
        1, [(0, "register", "initial")], scheduler=RandomScheduler(0)
    )


class TestReadsSeeRespondTimeState:
    def test_read_triggered_early_responds_late_sees_new_value(self):
        system = _system()
        reader = system.add_client(ClientId(0), ToyProtocol())
        writer = system.add_client(ClientId(1), ToyProtocol())
        reader.enqueue("read")
        system.kernel.force_client_step(ClientId(0))  # read pending
        read_op = next(iter(system.kernel.pending.values()))
        writer.enqueue("write", "fresh")
        system.kernel.force_client_step(ClientId(1))  # write pending
        write_op = [
            op for op in system.kernel.pending.values() if op is not read_op
        ][0]
        # The write responds (takes effect) BEFORE the earlier-triggered
        # read responds: the read must return the new value.
        system.kernel.force_respond(write_op.op_id)
        system.kernel.force_respond(read_op.op_id)
        system.run_to_quiescence()
        assert system.history.reads[0].result == "fresh"

    def test_read_responding_first_sees_old_value(self):
        system = _system()
        reader = system.add_client(ClientId(0), ToyProtocol())
        writer = system.add_client(ClientId(1), ToyProtocol())
        reader.enqueue("read")
        system.kernel.force_client_step(ClientId(0))
        read_op = next(iter(system.kernel.pending.values()))
        writer.enqueue("write", "fresh")
        system.kernel.force_client_step(ClientId(1))
        system.kernel.force_respond(read_op.op_id)
        system.run_to_quiescence()
        assert system.history.reads[0].result == "initial"


class TestWritesLandAtRespond:
    def test_late_responding_write_erases_newer_value(self):
        system = _system()
        first = system.add_client(ClientId(0), ToyProtocol())
        second = system.add_client(ClientId(1), ToyProtocol())
        first.enqueue("write", "old")
        system.kernel.force_client_step(ClientId(0))
        old_write = next(iter(system.kernel.pending.values()))
        second.enqueue("write", "new")
        system.kernel.force_client_step(ClientId(1))
        new_write = [
            op
            for op in system.kernel.pending.values()
            if op is not old_write
        ][0]
        system.kernel.force_respond(new_write.op_id)
        assert system.object_map.object(ObjectId(0)).value == "new"
        system.kernel.force_respond(old_write.op_id)  # covering write lands
        assert system.object_map.object(ObjectId(0)).value == "old"

    def test_per_object_respond_order_is_linearization_order(self):
        """The object history equals respond order — checked against the
        general linearizability checker."""
        from repro.analysis.baseobject_audit import (
            assert_base_objects_atomic,
        )

        system = _system()
        clients = [
            system.add_client(ClientId(i), ToyProtocol()) for i in range(3)
        ]
        for index, client in enumerate(clients):
            client.enqueue("write", f"v{index}")
            client.enqueue("read")
        assert system.run_to_quiescence().satisfied
        assert_base_objects_atomic(system.kernel, max_ops_per_object=None)
