"""Tests for history recording and precedence queries."""

from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId


def _op(seq, name, invoke, ret=None, args=(), result=None, client=0):
    return HistoryOp(
        seq=seq,
        client_id=ClientId(client),
        name=name,
        args=args,
        invoke_time=invoke,
        return_time=ret,
        result=result,
    )


def _history(ops):
    history = History()
    for op in ops:
        history.ops[op.seq] = op
    return history


class TestPrecedence:
    def test_precedes(self):
        first = _op(0, "write", 1, 2)
        second = _op(1, "write", 3, 4)
        assert first.precedes(second)
        assert not second.precedes(first)

    def test_concurrent_overlapping(self):
        first = _op(0, "write", 1, 5)
        second = _op(1, "write", 3, 8)
        assert first.concurrent_with(second)
        assert second.concurrent_with(first)

    def test_pending_precedes_nothing(self):
        pending = _op(0, "write", 1, None)
        later = _op(1, "write", 100, 101)
        assert not pending.precedes(later)
        assert pending.concurrent_with(later)


class TestWriteSequential:
    def test_sequential_writes(self):
        history = _history(
            [_op(0, "write", 1, 2), _op(1, "write", 3, 4), _op(2, "read", 5, 6)]
        )
        assert history.is_write_sequential()

    def test_overlapping_writes_not_sequential(self):
        history = _history([_op(0, "write", 1, 5), _op(1, "write", 3, 8)])
        assert not history.is_write_sequential()

    def test_overlapping_reads_still_sequential(self):
        history = _history(
            [_op(0, "write", 1, 2), _op(1, "read", 3, 9), _op(2, "read", 4, 8)]
        )
        assert history.is_write_sequential()

    def test_pending_write_before_later_write_not_sequential(self):
        history = _history([_op(0, "write", 1, None), _op(1, "write", 5, 6)])
        assert not history.is_write_sequential()


class TestQueries:
    def test_partition_reads_writes(self):
        history = _history(
            [_op(0, "write", 1, 2), _op(1, "read", 3, 4), _op(2, "write", 5, 6)]
        )
        assert len(history.writes) == 2
        assert len(history.reads) == 1

    def test_complete_and_pending(self):
        history = _history([_op(0, "write", 1, 2), _op(1, "write", 3, None)])
        assert len(history.complete_ops) == 1
        assert len(history.pending_ops) == 1

    def test_write_only(self):
        history = _history([_op(0, "write", 1, 2)])
        assert history.is_write_only()

    def test_completed_writes_before(self):
        history = _history(
            [_op(0, "write", 1, 2), _op(1, "write", 3, 10)]
        )
        assert len(history.completed_writes_before(5)) == 1
        assert len(history.completed_writes_before(10)) == 2

    def test_len(self):
        history = _history([_op(0, "write", 1, 2), _op(1, "read", 3, 4)])
        assert len(history) == 2
