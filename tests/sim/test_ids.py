"""Tests for typed identifiers."""

import pytest

from repro.sim.ids import (
    ClientId,
    ObjectId,
    OpId,
    ServerId,
    as_client_id,
    as_object_id,
    as_server_id,
)


class TestIdentity:
    def test_equality_within_type(self):
        assert ClientId(3) == ClientId(3)
        assert ServerId(1) != ServerId(2)

    def test_no_cross_type_equality(self):
        assert ClientId(1) != ServerId(1)
        assert ObjectId(1) != OpId(1)

    def test_hashable_distinct_buckets(self):
        mapping = {ClientId(0): "c", ServerId(0): "s", ObjectId(0): "o"}
        assert mapping[ClientId(0)] == "c"
        assert mapping[ServerId(0)] == "s"
        assert len(mapping) == 3

    def test_ordering(self):
        assert ClientId(1) < ClientId(2)
        assert sorted([ServerId(2), ServerId(0), ServerId(1)]) == [
            ServerId(0),
            ServerId(1),
            ServerId(2),
        ]

    def test_str_forms(self):
        assert str(ClientId(4)) == "c4"
        assert str(ServerId(2)) == "s2"
        assert str(ObjectId(7)) == "b7"
        assert str(OpId(9)) == "op9"


class TestCoercions:
    def test_from_int(self):
        assert as_client_id(5) == ClientId(5)
        assert as_server_id(5) == ServerId(5)
        assert as_object_id(5) == ObjectId(5)

    def test_identity_passthrough(self):
        cid = ClientId(2)
        assert as_client_id(cid) is cid

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            as_client_id("c1")
        with pytest.raises(TypeError):
            as_server_id(ServerId)
        with pytest.raises(TypeError):
            as_object_id(1.5)
