"""Tests for histories with non-default operation names (max-registers)."""

from repro.core.ft_maxreg import FTMaxRegister
from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId
from repro.sim.scheduling import RandomScheduler


class TestCustomNames:
    def test_ftmaxregister_history_classifies_ops(self):
        register = FTMaxRegister(n=3, f=1, scheduler=RandomScheduler(0))
        client = register.add_client()
        client.enqueue("write_max", 5)
        client.enqueue("read_max")
        assert register.system.run_to_quiescence().satisfied
        history = register.history
        assert len(history.writes) == 1
        assert len(history.reads) == 1
        assert history.writes[0].name == "write_max"

    def test_write_sequential_with_custom_names(self):
        history = History(write_name="write_max", read_name="read_max")
        history.ops[0] = HistoryOp(
            seq=0,
            client_id=ClientId(0),
            name="write_max",
            args=(1,),
            invoke_time=1,
            return_time=5,
        )
        history.ops[1] = HistoryOp(
            seq=1,
            client_id=ClientId(1),
            name="write_max",
            args=(2,),
            invoke_time=3,
            return_time=8,
        )
        assert not history.is_write_sequential()

    def test_default_names_ignore_foreign_ops(self):
        history = History()  # write/read
        history.ops[0] = HistoryOp(
            seq=0,
            client_id=ClientId(0),
            name="write_max",
            args=(1,),
            invoke_time=1,
            return_time=2,
        )
        assert history.writes == []
        assert history.reads == []
