"""Debugging-surface tests: string forms and step-budget regressions."""

import pytest

from tests.conftest import ToyProtocol

from repro.consistency.ws import WSViolation
from repro.sim.history import HistoryOp
from repro.sim.ids import ClientId, ObjectId, OpId, ServerId
from repro.sim.kernel import Action, ActionKind
from repro.sim.objects import AtomicRegister, LowLevelOp, OpKind
from repro.sim.scheduling import RoundRobinScheduler
from repro.sim.server import Server


class TestStringForms:
    """The strings humans read while debugging must carry the essentials."""

    def test_lowlevel_op(self):
        op = LowLevelOp(
            op_id=OpId(3),
            client_id=ClientId(1),
            object_id=ObjectId(2),
            kind=OpKind.WRITE,
            args=(7,),
            trigger_time=5,
        )
        text = str(op)
        assert "op3" in text and "write" in text and "pending" in text
        op.respond_time = 9
        assert "responded@9" in str(op)

    def test_action(self):
        assert str(Action(ActionKind.CLIENT, client_id=ClientId(2))) == (
            "step(c2)"
        )
        assert str(Action(ActionKind.RESPOND, op_id=OpId(4))) == (
            "respond(op4)"
        )

    def test_server(self):
        server = Server(ServerId(1))
        assert "up" in str(server)
        server.crashed = True
        assert "crashed" in str(server)

    def test_base_object(self):
        register = AtomicRegister(ObjectId(0), initial_value="x")
        assert "register" in str(register) and "'x'" in str(register)

    def test_history_op(self):
        op = HistoryOp(
            seq=0,
            client_id=ClientId(0),
            name="write",
            args=("v",),
            invoke_time=1,
            return_time=None,
        )
        assert "pending" in str(op)

    def test_ws_violation(self):
        op = HistoryOp(
            seq=0,
            client_id=ClientId(0),
            name="read",
            args=(),
            invoke_time=1,
            return_time=2,
            result="bad",
        )
        violation = WSViolation(op, allowed=["good"], condition="WS-Safe")
        text = str(violation)
        assert "WS-Safe" in text and "'bad'" in text and "'good'" in text


class TestStepBudgets:
    """Deterministic step budgets guard against accidental quadratic
    regressions in the emulations (steps are seed-independent under the
    round-robin scheduler)."""

    def test_algorithm2_write_read_budget(self):
        from repro.core.ws_register import WSRegisterEmulation

        emu = WSRegisterEmulation(
            k=2, n=5, f=2, scheduler=RoundRobinScheduler()
        )
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        writer.enqueue("write", "v")
        assert emu.system.run_to_quiescence(max_steps=100_000).satisfied
        reader.enqueue("read")
        assert emu.system.run_to_quiescence(max_steps=100_000).satisfied
        # 10 registers: a write is one collect (~2 ops per register +
        # scheduling) plus a write round; generous 3x headroom.
        assert emu.kernel.time < 200

    def test_abd_write_read_budget(self):
        from repro.core.abd import ABDEmulation

        emu = ABDEmulation(n=5, f=2, scheduler=RoundRobinScheduler())
        client = emu.add_client()
        client.enqueue("write", "v")
        client.enqueue("read")
        assert emu.system.run_to_quiescence(max_steps=100_000).satisfied
        assert emu.kernel.time < 100

    def test_cas_maxregister_budget(self):
        from repro.core.cas_maxreg import SingleCASMaxRegister

        register = SingleCASMaxRegister(
            initial_value=0, scheduler=RoundRobinScheduler()
        )
        client = register.add_client()
        for value in range(1, 6):
            client.enqueue("write_max", value)
        assert register.system.run_to_quiescence(max_steps=100_000).satisfied
        # 5 uncontended writes at 3 CAS round trips each, plus steps.
        assert register.kernel.time < 120
