"""Tests for schedule record/replay."""

import pytest

from tests.conftest import ToyProtocol

from repro.core.ws_register import WSRegisterEmulation
from repro.sim.ids import ClientId
from repro.sim.kernel import Action, ActionKind
from repro.sim.replay import (
    RecordingScheduler,
    ReplayDivergence,
    ReplayScheduler,
    describe,
    materialize,
)
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


def _fingerprint(history):
    return [
        (op.seq, op.name, op.invoke_time, op.return_time, repr(op.result))
        for op in history.all_ops()
    ]


class TestDescriptors:
    def test_round_trip(self):
        from repro.sim.ids import OpId

        client_action = Action(ActionKind.CLIENT, client_id=ClientId(3))
        respond_action = Action(ActionKind.RESPOND, op_id=OpId(9))
        assert materialize(describe(client_action)) == client_action
        assert materialize(describe(respond_action)) == respond_action

    def test_unknown_descriptor(self):
        with pytest.raises(ValueError):
            materialize(("teleport", 1))


class TestRecordReplay:
    def _drive(self, scheduler):
        emu = WSRegisterEmulation(k=2, n=5, f=2, scheduler=scheduler)
        writers = [emu.add_writer(i) for i in range(2)]
        reader = emu.add_reader()
        for index in range(2):
            writers[index].enqueue("write", f"v{index}")
            reader.enqueue("read")
            assert emu.system.run_to_quiescence(max_steps=500_000).satisfied
        return emu

    def test_replay_reproduces_history_exactly(self):
        recorder = RecordingScheduler(RandomScheduler(42))
        original = self._drive(recorder)
        replayed = self._drive(ReplayScheduler(recorder.script))
        assert _fingerprint(original.history) == _fingerprint(
            replayed.history
        )
        assert original.kernel.time == replayed.kernel.time

    def test_script_serializes(self):
        import json

        recorder = RecordingScheduler(RandomScheduler(1))
        self._drive(recorder)
        encoded = json.dumps(recorder.script)
        decoded = [tuple(entry) for entry in json.loads(encoded)]
        assert decoded == recorder.script

    def test_divergence_detected(self):
        recorder = RecordingScheduler(RandomScheduler(3))
        system = build_system(
            1, [(0, "register", None)], scheduler=recorder
        )
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.run_to_quiescence()
        # Replay against a DIFFERENT program: the script's actions stop
        # matching and the replayer raises instead of silently drifting.
        replay_system = build_system(
            1, [(0, "register", None)],
            scheduler=ReplayScheduler(recorder.script),
        )
        other = replay_system.add_client(ClientId(5), ToyProtocol())
        other.enqueue("write", 1)
        with pytest.raises(ReplayDivergence):
            replay_system.run_to_quiescence()

    def test_exhausted_script(self):
        scheduler = ReplayScheduler([])
        system = build_system(
            1, [(0, "register", None)], scheduler=scheduler
        )
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        with pytest.raises(ReplayDivergence):
            system.run_to_quiescence()
