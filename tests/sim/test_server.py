"""Tests for servers and the delta mapping."""

import pytest

from repro.sim.ids import ObjectId, ServerId
from repro.sim.objects import AtomicRegister
from repro.sim.server import ObjectMap


def _build(n_servers=3, objects_per_server=2):
    omap = ObjectMap()
    for s in range(n_servers):
        omap.add_server(ServerId(s))
    index = 0
    for s in range(n_servers):
        for _ in range(objects_per_server):
            omap.add_object(AtomicRegister(ObjectId(index)), ServerId(s))
            index += 1
    return omap


class TestConstruction:
    def test_counts(self):
        omap = _build(3, 2)
        assert omap.n_servers == 3
        assert omap.n_objects == 6

    def test_duplicate_server_rejected(self):
        omap = ObjectMap()
        omap.add_server(ServerId(0))
        with pytest.raises(ValueError):
            omap.add_server(ServerId(0))

    def test_duplicate_object_rejected(self):
        omap = ObjectMap()
        omap.add_server(ServerId(0))
        omap.add_object(AtomicRegister(ObjectId(0)), ServerId(0))
        with pytest.raises(ValueError):
            omap.add_object(AtomicRegister(ObjectId(0)), ServerId(0))

    def test_unknown_server_rejected(self):
        omap = ObjectMap()
        with pytest.raises(ValueError):
            omap.add_object(AtomicRegister(ObjectId(0)), ServerId(5))


class TestDeltaNotation:
    def test_server_of(self):
        omap = _build()
        assert omap.server_of(ObjectId(0)) == ServerId(0)
        assert omap.server_of(ObjectId(5)) == ServerId(2)

    def test_image(self):
        omap = _build()
        assert omap.image([ObjectId(0), ObjectId(1)]) == {ServerId(0)}
        assert omap.image([ObjectId(0), ObjectId(2)]) == {
            ServerId(0),
            ServerId(1),
        }

    def test_preimage(self):
        omap = _build()
        assert omap.preimage([ServerId(1)]) == {ObjectId(2), ObjectId(3)}

    def test_image_preimage_inequalities(self):
        """|delta(B)| <= |B| and |delta^-1(S)| >= |S| (Appendix A.4)."""
        omap = _build()
        objects = [ObjectId(0), ObjectId(1), ObjectId(2)]
        assert len(omap.image(objects)) <= len(objects)
        servers = [ServerId(0), ServerId(2)]
        assert len(omap.preimage(servers)) >= len(servers)

    def test_objects_on_preserves_order(self):
        omap = _build()
        assert omap.objects_on(ServerId(0)) == [ObjectId(0), ObjectId(1)]


class TestCrashes:
    def test_crash_cascades_to_objects(self):
        omap = _build()
        crashed = omap.crash_server(ServerId(1))
        assert set(crashed) == {ObjectId(2), ObjectId(3)}
        assert omap.object(ObjectId(2)).crashed
        assert omap.object(ObjectId(3)).crashed
        assert not omap.object(ObjectId(0)).crashed

    def test_crash_idempotent(self):
        omap = _build()
        omap.crash_server(ServerId(0))
        assert omap.crash_server(ServerId(0)) == []

    def test_correct_and_crashed_partition(self):
        omap = _build()
        omap.crash_server(ServerId(2))
        assert omap.crashed_servers == {ServerId(2)}
        assert omap.correct_servers == {ServerId(0), ServerId(1)}


class TestStorage:
    def test_storage_profile(self):
        omap = _build(2, 3)
        assert omap.storage_profile() == {ServerId(0): 3, ServerId(1): 3}

    def test_server_storage(self):
        omap = _build()
        assert omap.server(ServerId(0)).storage == 2
