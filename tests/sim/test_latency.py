"""Tests for the weighted (straggler) scheduler."""

import pytest

from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular
from repro.core.abd import ABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.ids import ClientId, ServerId
from repro.sim.latency import WeightedScheduler, straggler_fleet
from repro.sim.kernel import Action, ActionKind


class TestWeightedScheduler:
    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            WeightedScheduler(server_weights={ServerId(0): 0.0})
        with pytest.raises(ValueError):
            WeightedScheduler(client_weights={ClientId(0): -1.0})

    def test_deterministic_given_seed(self):
        actions = [
            Action(ActionKind.CLIENT, client_id=ClientId(i)) for i in range(4)
        ]
        a = WeightedScheduler(seed=5)
        b = WeightedScheduler(seed=5)
        assert [a.choose(actions, None) for _ in range(20)] == [
            b.choose(actions, None) for _ in range(20)
        ]

    def test_weights_bias_selection(self):
        heavy = ClientId(0)
        light = ClientId(1)
        scheduler = WeightedScheduler(
            seed=1, client_weights={heavy: 10.0, light: 0.1}
        )
        actions = [
            Action(ActionKind.CLIENT, client_id=heavy),
            Action(ActionKind.CLIENT, client_id=light),
        ]
        picks = [scheduler.choose(actions, None) for _ in range(200)]
        heavy_count = sum(1 for a in picks if a.client_id == heavy)
        assert heavy_count > 150

    def test_straggler_fleet_bounds_indices(self):
        scheduler = straggler_fleet(3, {0: 0.1, 7: 0.1})
        assert ServerId(0) in scheduler.server_weights
        assert ServerId(7) not in scheduler.server_weights


class TestEmulationsUnderStragglers:
    def test_ws_register_survives_straggler(self):
        scheduler = straggler_fleet(5, {0: 0.02, 4: 0.05}, seed=3)
        emu = WSRegisterEmulation(k=2, n=5, f=2, scheduler=scheduler)
        writers = [emu.add_writer(i) for i in range(2)]
        reader = emu.add_reader()
        for index in range(3):
            writers[index % 2].enqueue("write", f"v{index}")
            reader.enqueue("read")
            result = emu.system.run_to_quiescence(max_steps=1_000_000)
            assert result.satisfied  # wait-free despite the stragglers
        assert check_ws_regular(emu.history, cross_check=True) == []

    def test_abd_atomic_under_straggler(self):
        scheduler = straggler_fleet(5, {2: 0.02}, seed=4)
        emu = ABDEmulation(n=5, f=2, scheduler=scheduler)
        a, b = emu.add_client(), emu.add_client()
        a.enqueue("write", "x")
        b.enqueue("write", "y")
        a.enqueue("read")
        assert emu.system.run_to_quiescence(max_steps=1_000_000).satisfied
        assert is_register_history_atomic(emu.history)
