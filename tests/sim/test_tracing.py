"""Tests for run tracing and timeline rendering."""

from tests.conftest import ToyProtocol

from repro.sim.ids import ClientId, ServerId
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system
from repro.sim.tracing import (
    TraceRecorder,
    format_entry,
    render_event_log,
    render_timeline,
)


def _traced_system(seed=0):
    system = build_system(
        1, [(0, "register", None)], scheduler=RandomScheduler(seed)
    )
    recorder = TraceRecorder()
    system.kernel.add_listener(recorder)
    return system, recorder


class TestTraceRecorder:
    def test_records_all_event_kinds(self):
        system, recorder = _traced_system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.run_to_quiescence()
        system.kernel.crash_server(ServerId(0))
        kinds = {entry.kind for entry in recorder.entries}
        assert kinds == {"invoke", "trigger", "respond", "return", "crash"}

    def test_chronological(self):
        system, recorder = _traced_system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        client.enqueue("read")
        system.run_to_quiescence()
        times = [entry.time for entry in recorder.entries]
        assert times == sorted(times)

    def test_horizon(self):
        system, recorder = _traced_system()
        assert recorder.horizon == 0
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.run_to_quiescence()
        assert recorder.horizon == system.kernel.time


class TestRendering:
    def test_event_log_contains_all_lines(self):
        system, recorder = _traced_system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 7)
        system.run_to_quiescence()
        log = render_event_log(recorder)
        assert "invoke write" in log
        assert "trigger write(7,)" in log
        assert "respond write" in log
        assert "return write -> 'ack'" in log

    def test_event_log_filter_and_limit(self):
        system, recorder = _traced_system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 7)
        client.enqueue("read")
        system.run_to_quiescence()
        only_invokes = render_event_log(recorder, kinds={"invoke"})
        assert len(only_invokes.splitlines()) == 2
        limited = render_event_log(recorder, limit=3)
        assert len(limited.splitlines()) == 3

    def test_timeline_lanes(self):
        system, recorder = _traced_system()
        a = system.add_client(ClientId(0), ToyProtocol())
        b = system.add_client(ClientId(1), ToyProtocol())
        a.enqueue("write", 1)
        b.enqueue("read")
        system.run_to_quiescence()
        timeline = render_timeline(recorder, width=40)
        assert "c0 |" in timeline
        assert "c1 |" in timeline
        assert "[" in timeline and "]" in timeline

    def test_timeline_marks_pending_and_crashes(self):
        system, recorder = _traced_system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))  # invoke + trigger
        system.kernel.crash_server(ServerId(0))
        system.kernel.run(max_steps=50)
        timeline = render_timeline(recorder, width=40)
        assert ">" in timeline  # the write never returns: open interval
        assert "X" in timeline  # the crash lane

    def test_format_entry_crash(self):
        system, recorder = _traced_system()
        system.kernel.crash_server(ServerId(0))
        line = format_entry(recorder.entries[-1])
        assert "CRASH" in line and "s0" in line
