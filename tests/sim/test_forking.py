"""Tests for run forking (branching futures from one prefix)."""

import pytest

from tests.conftest import ToyProtocol

from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.forking import ForkError, assert_forkable, fork_kernel, fork_many
from repro.sim.ids import ClientId, ObjectId, ServerId
from repro.sim.kernel import Environment
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


class TestForkability:
    def test_idle_kernel_forkable(self):
        system = build_system(1, [(0, "register", None)])
        assert_forkable(system.kernel)

    def test_inflight_operation_blocks_fork(self):
        system = build_system(1, [(0, "register", None)])
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))  # now mid-operation
        with pytest.raises(ForkError):
            fork_kernel(system.kernel)

    def test_fork_many_validates_count(self):
        system = build_system(1, [(0, "register", None)])
        with pytest.raises(ValueError):
            fork_many(system.kernel, 0)


class TestIndependence:
    def test_forks_do_not_share_state(self):
        system = build_system(
            1, [(0, "register", 0)], scheduler=RandomScheduler(0)
        )
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        system.run_to_quiescence()
        fork = fork_kernel(system.kernel)
        # Advance only the fork.
        fork.clients[ClientId(0)].enqueue("write", 2)
        fork.run(max_steps=1_000)
        assert fork.object_map.object(ObjectId(0)).value == 2
        assert system.object_map.object(ObjectId(0)).value == 1

    def test_pending_covering_writes_fork(self):
        """The Figure 2 situation: fork a prefix that carries covering
        writes, then resolve them differently in each branch."""
        k, n, f = 1, 3, 1

        def factory(scheduler):
            return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

        runner = Lemma1Runner(factory, k=k, f=f)
        runner.run()  # one write, f covering writes pending
        kernel = runner.emulation.kernel
        pending_before = len(kernel.pending)
        assert pending_before >= f

        branch_a, branch_b = fork_many(kernel, 2)
        for branch in (branch_a, branch_b):
            branch.environment = Environment()  # lift the adversary

        # Branch A: the covering writes' servers crash; they never land.
        for op in list(branch_a.pending.values()):
            branch_a.crash_server(branch_a.object_map.server_of(op.object_id))
        branch_a.run(max_steps=10_000)
        assert len(branch_a.pending) == pending_before

        # Branch B: the covering writes respond (and retrigger/settle).
        branch_b.run(max_steps=10_000)
        assert not branch_b.pending

        # The original prefix is untouched either way.
        assert len(kernel.pending) == pending_before

    def test_branches_diverge_with_different_operations(self):
        emu = WSRegisterEmulation(k=2, n=5, f=2, scheduler=RandomScheduler(1))
        writer0 = emu.add_writer(0)
        writer1 = emu.add_writer(1)
        reader = emu.add_reader()
        writer0.enqueue("write", "base")
        assert emu.system.run_to_quiescence().satisfied

        branch_a, branch_b = fork_many(emu.kernel, 2)
        # Branch A: read immediately.
        reader_a = branch_a.clients[reader.client_id]
        reader_a.enqueue("read")
        branch_a.run(max_steps=100_000)
        # Branch B: another write, then read.
        branch_b.clients[writer1.client_id].enqueue("write", "branched")
        branch_b.run(max_steps=100_000)
        branch_b.clients[reader.client_id].enqueue("read")
        branch_b.run(max_steps=100_000)

        def last_read(kernel):
            history = [
                listener
                for listener in kernel.listeners
                if hasattr(listener, "reads")
            ][0]
            return history.reads[-1].result

        assert last_read(branch_a) == "base"
        assert last_read(branch_b) == "branched"
