"""Tests for the kernel: actions, steps, vetoes, crashes."""

import pytest

from tests.conftest import ToyProtocol

from repro.sim.ids import ClientId, ObjectId, OpId, ServerId
from repro.sim.kernel import Action, ActionKind, Environment
from repro.sim.objects import OpKind
from repro.sim.scheduling import RandomScheduler, RoundRobinScheduler
from repro.sim.system import build_system


def _system(seed=0, n_servers=1, placements=None):
    placements = placements or [(0, "register", None)]
    return build_system(n_servers, placements, scheduler=RandomScheduler(seed))


class TestBasicExecution:
    def test_write_read_roundtrip(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 7)
        client.enqueue("read")
        result = system.run_to_quiescence()
        assert result.satisfied
        assert system.history.reads[0].result == 7

    def test_time_advances_one_per_action(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        before = system.kernel.time
        system.run_to_quiescence()
        assert system.kernel.time > before

    def test_quiescent_when_nothing_to_do(self):
        system = _system()
        system.add_client(ClientId(0), ToyProtocol())
        result = system.kernel.run(max_steps=10)
        assert result.reason == "quiescent"

    def test_max_steps_reached(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 1)
        result = system.kernel.run(max_steps=1)
        assert result.reason == "max_steps"


class TestEnabledActions:
    def test_pending_op_enables_respond(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 3)
        # One client step: invoke + trigger.
        system.kernel.force_client_step(ClientId(0))
        actions = system.kernel.enabled_actions()
        responds = [a for a in actions if a.kind is ActionKind.RESPOND]
        assert len(responds) == 1

    def test_actions_deterministically_ordered(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 3)
        system.kernel.force_client_step(ClientId(0))
        assert system.kernel.enabled_actions() == system.kernel.enabled_actions()


class TestEnvironmentVeto:
    class BlockAllWrites(Environment):
        def allows(self, action, kernel):
            op = kernel.pending.get(action.op_id)
            return op is None or not op.is_mutator

    def test_vetoed_write_blocks_run(self):
        system = _system()
        system.kernel.environment = self.BlockAllWrites()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 3)
        result = system.kernel.run(max_steps=100)
        assert result.reason == "blocked"
        # The write is still pending (covering).
        assert len(system.kernel.pending) == 1

    def test_veto_lifted_allows_completion(self):
        system = _system()
        system.kernel.environment = self.BlockAllWrites()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 3)
        system.kernel.run(max_steps=100)
        system.kernel.environment = Environment()
        result = system.run_to_quiescence()
        assert result.satisfied
        assert system.object_map.object(ObjectId(0)).value == 3


class TestCrashes:
    def test_crashed_server_ops_never_respond(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 3)
        system.kernel.force_client_step(ClientId(0))
        system.kernel.crash_server(ServerId(0))
        result = system.kernel.run(max_steps=100)
        # The pending respond is not enabled; the client waits forever.
        assert result.reason == "quiescent"
        assert len(system.kernel.pending) == 1

    def test_crashed_client_takes_no_steps(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 3)
        system.kernel.crash_client(ClientId(0))
        result = system.kernel.run(max_steps=100)
        assert result.reason == "quiescent"
        assert not system.history.complete_ops

    def test_pending_write_of_crashed_client_still_takes_effect(self):
        """The model allows a crashed client's covering write to land."""
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 3)
        system.kernel.force_client_step(ClientId(0))  # trigger the write
        system.kernel.crash_client(ClientId(0))
        result = system.kernel.run(max_steps=100)
        assert result.reason == "quiescent"
        assert system.object_map.object(ObjectId(0)).value == 3


class TestForcedActions:
    def test_force_respond_specific_op(self):
        system = _system()
        client = system.add_client(ClientId(0), ToyProtocol())
        client.enqueue("write", 9)
        system.kernel.force_client_step(ClientId(0))
        (op_id,) = list(system.kernel.pending)
        system.kernel.force_respond(op_id)
        assert system.object_map.object(ObjectId(0)).value == 9

    def test_force_respond_non_pending_raises(self):
        system = _system()
        with pytest.raises(ValueError):
            system.kernel.force_respond(OpId(99))

    def test_duplicate_client_rejected(self):
        system = _system()
        system.add_client(ClientId(0), ToyProtocol())
        with pytest.raises(ValueError):
            system.kernel.add_client(ClientId(0), ToyProtocol())
