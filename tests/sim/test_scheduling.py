"""Tests for scheduler policies (determinism, fairness)."""

from tests.conftest import ToyProtocol

from repro.sim.ids import ClientId
from repro.sim.kernel import Action, ActionKind
from repro.sim.scheduling import (
    ClientPriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.system import build_system


def _client_action(index):
    return Action(ActionKind.CLIENT, client_id=ClientId(index))


class TestRandomScheduler:
    def test_deterministic_given_seed(self):
        actions = [_client_action(i) for i in range(5)]
        first = [RandomScheduler(7).choose(actions, None) for _ in range(20)]
        second = [RandomScheduler(7).choose(actions, None) for _ in range(20)]
        assert first == second

    def test_different_seeds_differ(self):
        actions = [_client_action(i) for i in range(10)]
        a = RandomScheduler(1)
        b = RandomScheduler(2)
        picks_a = [a.choose(actions, None) for _ in range(30)]
        picks_b = [b.choose(actions, None) for _ in range(30)]
        assert picks_a != picks_b

    def test_full_run_reproducible(self):
        def run(seed):
            system = build_system(
                1, [(0, "register", None)], scheduler=RandomScheduler(seed)
            )
            client = system.add_client(ClientId(0), ToyProtocol())
            for i in range(5):
                client.enqueue("write", i)
                client.enqueue("read")
            system.run_to_quiescence()
            return [
                (op.name, op.invoke_time, op.return_time, op.result)
                for op in system.history.all_ops()
            ]

        assert run(3) == run(3)


class TestRoundRobinScheduler:
    def test_no_starvation(self):
        """Every continuously enabled action is picked within a bounded
        number of choices."""
        scheduler = RoundRobinScheduler()
        actions = [_client_action(i) for i in range(4)]
        picked = [scheduler.choose(actions, None) for _ in range(8)]
        for action in actions:
            assert picked.count(action) == 2

    def test_new_actions_integrated(self):
        scheduler = RoundRobinScheduler()
        actions = [_client_action(0)]
        scheduler.choose(actions, None)
        actions.append(_client_action(1))
        # The fresh action is served before the stale one repeats forever.
        picks = [scheduler.choose(actions, None) for _ in range(2)]
        assert _client_action(1) in picks


class TestClientPriorityScheduler:
    def test_prefers_client_steps(self):
        scheduler = ClientPriorityScheduler()
        from repro.sim.ids import OpId

        respond = Action(ActionKind.RESPOND, op_id=OpId(0))
        client = _client_action(0)
        assert scheduler.choose([respond, client], None) == client

    def test_falls_back_to_responds(self):
        scheduler = ClientPriorityScheduler()
        from repro.sim.ids import OpId

        respond = Action(ActionKind.RESPOND, op_id=OpId(0))
        assert scheduler.choose([respond], None) == respond
