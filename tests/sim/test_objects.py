"""Tests for base object types (respond-time semantics)."""

import pytest

from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.objects import (
    AtomicRegister,
    CASObject,
    LowLevelOp,
    MaxRegister,
    OpKind,
    make_object,
)


def _op(obj_id, kind, args, op_index=0):
    return LowLevelOp(
        op_id=OpId(op_index),
        client_id=ClientId(0),
        object_id=obj_id,
        kind=kind,
        args=args,
        trigger_time=0,
    )


class TestAtomicRegister:
    def test_write_then_read(self):
        reg = AtomicRegister(ObjectId(0), initial_value=None)
        assert reg.apply(_op(ObjectId(0), OpKind.WRITE, (5,))) == "ack"
        assert reg.apply(_op(ObjectId(0), OpKind.READ, ())) == 5

    def test_read_initial(self):
        reg = AtomicRegister(ObjectId(0), initial_value="v0")
        assert reg.apply(_op(ObjectId(0), OpKind.READ, ())) == "v0"

    def test_last_write_wins(self):
        reg = AtomicRegister(ObjectId(0))
        reg.apply(_op(ObjectId(0), OpKind.WRITE, (1,)))
        reg.apply(_op(ObjectId(0), OpKind.WRITE, (2,)))
        assert reg.apply(_op(ObjectId(0), OpKind.READ, ())) == 2

    def test_covering_write_erases_later_value(self):
        """Assumption 1 in action: a write applies at respond time, so a
        held-back ("covering") write erases a newer value."""
        reg = AtomicRegister(ObjectId(0))
        newer = _op(ObjectId(0), OpKind.WRITE, ("new",), 1)
        covering = _op(ObjectId(0), OpKind.WRITE, ("old",), 0)
        reg.apply(newer)  # the newer write responded first
        reg.apply(covering)  # the covering write takes effect late
        assert reg.apply(_op(ObjectId(0), OpKind.READ, (), 2)) == "old"

    def test_rejects_unsupported_kind(self):
        reg = AtomicRegister(ObjectId(0))
        with pytest.raises(ValueError):
            reg.apply(_op(ObjectId(0), OpKind.CAS, (0, 1)))


class TestMaxRegister:
    def test_values_only_grow(self):
        mreg = MaxRegister(ObjectId(0), initial_value=0)
        mreg.apply(_op(ObjectId(0), OpKind.WRITE_MAX, (5,)))
        mreg.apply(_op(ObjectId(0), OpKind.WRITE_MAX, (3,)))
        assert mreg.apply(_op(ObjectId(0), OpKind.READ_MAX, ())) == 5

    def test_write_max_returns_ok(self):
        mreg = MaxRegister(ObjectId(0), initial_value=0)
        assert mreg.apply(_op(ObjectId(0), OpKind.WRITE_MAX, (1,))) == "ok"

    def test_initial_value_read(self):
        mreg = MaxRegister(ObjectId(0), initial_value=42)
        assert mreg.apply(_op(ObjectId(0), OpKind.READ_MAX, ())) == 42

    def test_rejects_plain_write(self):
        mreg = MaxRegister(ObjectId(0), initial_value=0)
        with pytest.raises(ValueError):
            mreg.apply(_op(ObjectId(0), OpKind.WRITE, (1,)))


class TestCASObject:
    def test_successful_cas(self):
        cas = CASObject(ObjectId(0), initial_value=0)
        assert cas.apply(_op(ObjectId(0), OpKind.CAS, (0, 7))) == 0
        assert cas.value == 7

    def test_failed_cas_returns_old_value(self):
        cas = CASObject(ObjectId(0), initial_value=3)
        assert cas.apply(_op(ObjectId(0), OpKind.CAS, (0, 7))) == 3
        assert cas.value == 3

    def test_cas_v0_v0_acts_as_read(self):
        cas = CASObject(ObjectId(0), initial_value=0)
        cas.apply(_op(ObjectId(0), OpKind.CAS, (0, 9)))
        assert cas.apply(_op(ObjectId(0), OpKind.CAS, (0, 0))) == 9
        assert cas.value == 9


class TestCrashBehaviour:
    def test_apply_on_crashed_object_raises(self):
        reg = AtomicRegister(ObjectId(0))
        reg.crashed = True
        with pytest.raises(RuntimeError):
            reg.apply(_op(ObjectId(0), OpKind.WRITE, (1,)))

    def test_reset_restores_initial(self):
        reg = AtomicRegister(ObjectId(0), initial_value="v0")
        reg.apply(_op(ObjectId(0), OpKind.WRITE, ("x",)))
        reg.crashed = True
        reg.reset()
        assert reg.value == "v0"
        assert not reg.crashed


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("register", AtomicRegister),
            ("max-register", MaxRegister),
            ("max_register", MaxRegister),
            ("cas", CASObject),
        ],
    )
    def test_known_types(self, name, cls):
        obj = make_object(name, ObjectId(1), initial_value=0)
        assert isinstance(obj, cls)
        assert obj.object_id == ObjectId(1)

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            make_object("queue", ObjectId(0))


class TestOpKind:
    def test_mutator_classification(self):
        assert OpKind.WRITE.is_mutator
        assert OpKind.WRITE_MAX.is_mutator
        assert OpKind.CAS.is_mutator
        assert not OpKind.READ.is_mutator
        assert not OpKind.READ_MAX.is_mutator
