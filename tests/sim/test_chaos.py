"""Tests for the chaos (random-delay) environment."""

import pytest

from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular
from repro.core.abd import ABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.chaos import ChaosEnvironment
from repro.sim.scheduling import RandomScheduler


class TestParameters:
    def test_probability_validated(self):
        with pytest.raises(ValueError):
            ChaosEnvironment(veto_probability=1.0)
        with pytest.raises(ValueError):
            ChaosEnvironment(veto_probability=-0.1)

    def test_delay_validated(self):
        with pytest.raises(ValueError):
            ChaosEnvironment(max_delay=-1)


class TestLivenessUnderChaos:
    @pytest.mark.parametrize("seed", range(4))
    def test_algorithm2_completes_and_stays_regular(self, seed):
        emu = WSRegisterEmulation(
            k=2,
            n=5,
            f=2,
            scheduler=RandomScheduler(seed),
            environment=ChaosEnvironment(
                seed=seed, veto_probability=0.7, max_delay=60
            ),
        )
        writers = [emu.add_writer(i) for i in range(2)]
        reader = emu.add_reader()
        for index in range(3):
            writers[index % 2].enqueue("write", f"v{index}")
            reader.enqueue("read")
            result = emu.system.run_to_quiescence(max_steps=2_000_000)
            assert result.satisfied
        assert check_ws_regular(emu.history, cross_check=True) == []

    @pytest.mark.parametrize("seed", range(4))
    def test_abd_stays_atomic(self, seed):
        environment = ChaosEnvironment(
            seed=seed, veto_probability=0.6, max_delay=50
        )
        emu = ABDEmulation(
            n=5,
            f=2,
            scheduler=RandomScheduler(seed),
            environment=environment,
        )
        writers = [emu.add_client() for _ in range(2)]
        reader = emu.add_client()
        for i, writer in enumerate(writers):
            writer.enqueue("write", f"w{i}")
        reader.enqueue("read")
        assert emu.system.run_to_quiescence(max_steps=2_000_000).satisfied
        assert is_register_history_atomic(emu.history)
        assert environment.vetoes > 0  # chaos actually happened

    def test_high_chaos_still_terminates(self):
        emu = WSRegisterEmulation(
            k=1,
            n=3,
            f=1,
            scheduler=RandomScheduler(1),
            environment=ChaosEnvironment(
                seed=1, veto_probability=0.95, max_delay=40
            ),
        )
        writer = emu.add_writer(0)
        writer.enqueue("write", "x")
        result = emu.system.run_to_quiescence(max_steps=2_000_000)
        assert result.satisfied


class TestDeterminism:
    def test_same_seed_same_vetoes(self):
        def run(seed):
            environment = ChaosEnvironment(
                seed=seed, veto_probability=0.5, max_delay=30
            )
            emu = ABDEmulation(
                n=3,
                f=1,
                scheduler=RandomScheduler(0),
                environment=environment,
            )
            client = emu.add_client()
            client.enqueue("write", "x")
            emu.system.run_to_quiescence(max_steps=1_000_000)
            return environment.vetoes, emu.kernel.time

        assert run(7) == run(7)
        # And at least some seeds differ.
        assert len({run(seed) for seed in range(5)}) > 1
