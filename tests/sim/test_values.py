"""Tests for timestamped values."""

import pytest

from repro.sim.values import TSVal, bottom_tsval, max_tsval


class TestOrdering:
    def test_timestamp_dominates(self):
        assert TSVal(1, 9) < TSVal(2, 0)
        assert TSVal(3, 0) > TSVal(2, 9)

    def test_writer_id_breaks_ties(self):
        assert TSVal(1, 0) < TSVal(1, 1)
        assert TSVal(1, 2) >= TSVal(1, 2)

    def test_payload_ignored_in_comparison(self):
        assert TSVal(1, 0, "a") == TSVal(1, 0, "b")
        assert hash(TSVal(1, 0, "a")) == hash(TSVal(1, 0, "b"))

    def test_total_order_over_sample(self):
        values = [TSVal(2, 1), TSVal(1, 5), TSVal(2, 0), TSVal(0, 9)]
        ordered = sorted(values)
        keys = [v.key() for v in ordered]
        assert keys == sorted(keys)


class TestBottom:
    def test_bottom_is_minimal(self):
        assert bottom_tsval() < TSVal(0, 0)
        assert bottom_tsval() < TSVal(1, -5)

    def test_bottom_carries_initial_value(self):
        assert bottom_tsval("init").val == "init"
        assert bottom_tsval().ts == 0


class TestMaxTSVal:
    def test_picks_largest(self):
        values = [TSVal(1, 0, "a"), TSVal(3, 0, "c"), TSVal(2, 0, "b")]
        assert max_tsval(values).val == "c"

    def test_single_element(self):
        assert max_tsval([TSVal(5, 1, "x")]).val == "x"

    def test_tie_break_by_wid(self):
        values = [TSVal(1, 0, "lo"), TSVal(1, 3, "hi")]
        assert max_tsval(values).val == "hi"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            max_tsval([])
