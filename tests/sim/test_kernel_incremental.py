"""Differential and unit tests for the incremental scheduling kernel.

The kernel maintains the enabled-action set incrementally
(``run(incremental=True)``, the default) with ``enabled_actions()`` kept
as the from-scratch oracle (``run(incremental=False)``).  The tests here
prove the two paths are *observationally identical*: driven by the same
seeded scheduler they choose the exact same action sequence — including
under an adversarial environment, stalls, and crashes — and the fast-path
machinery (pre-bound listener dispatch, veto-verdict caching, the O(1)
round-robin queues) preserves the seed-reproducibility contract.
"""

import pytest

from tests.conftest import ToyProtocol

from repro.core.ws_register import WSRegisterEmulation
from repro.sim.chaos import ChaosEnvironment
from repro.sim.events import EventListener
from repro.sim.failures import CrashPlan
from repro.sim.ids import ClientId, ServerId
from repro.sim.kernel import Action, ActionKind, Environment
from repro.sim.replay import RecordingScheduler
from repro.sim.scheduling import RandomScheduler, RoundRobinScheduler
from repro.sim.system import build_system
from repro.sim.tracing import TraceRecorder


# -- differential: incremental vs from-scratch oracle ---------------------


def _drive_ws(seed, incremental, environment=None, crash_plan=None):
    """One seeded WSRegister run; returns (script, reason, time, history)."""
    scheduler = RecordingScheduler(RandomScheduler(seed))
    emu = WSRegisterEmulation(
        2, 3, 1, scheduler=scheduler, environment=environment
    )
    writers = [emu.add_writer(index) for index in range(2)]
    reader = emu.add_reader()
    if crash_plan is not None:
        crash_plan(writers, reader).install(emu.kernel)
    for index in range(6):
        writers[index % 2].enqueue("write", f"v{index}")
        reader.enqueue("read")
    live = [*writers, reader]

    def done(kernel):
        return all(c.crashed or (c.idle and not c.program) for c in live)

    result = emu.kernel.run(max_steps=20_000, until=done, incremental=incremental)
    history = [
        (op.seq, op.name, op.invoke_time, op.return_time, repr(op.result))
        for op in emu.history.all_ops()
    ]
    return scheduler.script, result.reason, emu.kernel.time, history


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
def test_differential_identical_action_sequences(seed):
    """Old path and new path pick the same actions for the same seed."""
    assert _drive_ws(seed, incremental=True) == _drive_ws(
        seed, incremental=False
    )


@pytest.mark.parametrize("seed", [0, 3, 99])
def test_differential_under_chaos_environment(seed):
    """Equivalence holds with a vetoing, stalling environment in play."""

    def chaos():
        return ChaosEnvironment(seed=seed, veto_probability=0.6, max_delay=60)

    assert _drive_ws(seed, True, environment=chaos()) == _drive_ws(
        seed, False, environment=chaos()
    )


@pytest.mark.parametrize("seed", [0, 5, 77])
def test_differential_with_crashes(seed):
    """Equivalence holds across server and client crashes mid-run."""

    def plan(writers, reader):
        return (
            CrashPlan()
            .crash_server_at(40, ServerId(0))
            .crash_client_at(90, writers[1].client_id)
        )

    assert _drive_ws(seed, True, crash_plan=plan) == _drive_ws(
        seed, False, crash_plan=plan
    )


def test_check_incremental_holds_throughout_a_run():
    """The oracle-vs-incremental assertion passes at every step."""
    system = build_system(
        1, [(0, "register", None)], scheduler=RandomScheduler(4)
    )

    class Checker(EventListener):
        def __init__(self):
            self.checked = 0

        def on_step(self, time):
            system.kernel.check_incremental()
            self.checked += 1

    checker = Checker()
    system.kernel.add_listener(checker)
    client = system.add_client(ClientId(0), ToyProtocol())
    client.enqueue("write", 1)
    client.enqueue("read")
    assert system.run_to_quiescence().satisfied
    assert checker.checked > 0
    system.kernel.check_incremental()  # and in the final configuration


def test_check_incremental_detects_divergence():
    system = build_system(1, [(0, "register", None)])
    client = system.add_client(ClientId(0), ToyProtocol())
    client.enqueue("write", 1)  # the client is now genuinely enabled
    # Corrupt the incremental state behind the kernel's back.
    system.kernel._candidates.clear()
    with pytest.raises(RuntimeError, match="diverged"):
        system.kernel.check_incremental()


# -- listener pre-binding --------------------------------------------------


class _CountingListener(EventListener):
    def __init__(self):
        self.triggers = 0
        self.steps = 0

    def on_trigger(self, event):
        self.triggers += 1

    def on_step(self, time):
        self.steps += 1


def test_add_listener_subscribes_only_overridden_hooks():
    system = build_system(1, [(0, "register", None)])
    kernel = system.kernel
    baseline = {
        attr: len(getattr(kernel, attr))
        for attr in (
            "_subs_trigger",
            "_subs_respond",
            "_subs_invoke",
            "_subs_return",
            "_subs_crash",
            "_subs_step",
        )
    }
    listener = _CountingListener()
    kernel.add_listener(listener)
    assert len(kernel._subs_trigger) == baseline["_subs_trigger"] + 1
    assert len(kernel._subs_step) == baseline["_subs_step"] + 1
    # Hooks left at the EventListener defaults are never dispatched to.
    for attr in ("_subs_respond", "_subs_invoke", "_subs_return", "_subs_crash"):
        assert len(getattr(kernel, attr)) == baseline[attr]
    assert listener in kernel.listeners


def test_prebound_listener_receives_events():
    system = build_system(1, [(0, "register", None)])
    listener = _CountingListener()
    system.kernel.add_listener(listener)
    client = system.add_client(ClientId(0), ToyProtocol())
    client.enqueue("write", 1)
    assert system.run_to_quiescence().satisfied
    assert listener.triggers == 1
    assert listener.steps == system.kernel.time


def test_trace_recorder_kinds_filter_skips_subscription():
    system = build_system(1, [(0, "register", None)])
    kernel = system.kernel
    respond_subs = len(kernel._subs_respond)
    recorder = TraceRecorder(kinds={"invoke", "return"})
    kernel.add_listener(recorder)
    assert len(kernel._subs_respond) == respond_subs  # masked hook skipped
    client = system.add_client(ClientId(0), ToyProtocol())
    client.enqueue("write", 1)
    assert system.run_to_quiescence().satisfied
    kinds = {entry.kind for entry in recorder.entries}
    assert kinds == {"invoke", "return"}


def test_trace_recorder_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="unknown event kinds"):
        TraceRecorder(kinds={"invoke", "teleport"})


# -- veto-verdict caching --------------------------------------------------


class _EpochedEnvironment(Environment):
    """Vetoes every respond; counts consultations; manual epoch bumps."""

    def __init__(self):
        self.epoch = 0
        self.consultations = 0

    def veto_epoch(self, kernel):
        return self.epoch

    def allows(self, action, kernel):
        self.consultations += 1
        return False


def test_veto_verdicts_cached_within_an_epoch():
    env = _EpochedEnvironment()
    system = build_system(
        1, [(0, "register", None)], environment=env
    )
    client = system.add_client(ClientId(0), ToyProtocol())
    client.enqueue("write", 1)
    system.kernel.force_client_step(ClientId(0))  # trigger the low-level op
    assert len(system.kernel.pending) == 1
    system.kernel.allowed_actions()
    assert env.consultations == 1
    # Same epoch: the cached verdict is reused, no re-consultation.
    system.kernel.allowed_actions()
    system.kernel.allowed_actions()
    assert env.consultations == 1
    # A new epoch invalidates the cache.
    env.epoch += 1
    system.kernel.allowed_actions()
    assert env.consultations == 2


def test_default_epoch_none_disables_caching():
    class Vetoer(Environment):
        def __init__(self):
            self.consultations = 0

        def allows(self, action, kernel):
            self.consultations += 1
            return False

    env = Vetoer()
    system = build_system(1, [(0, "register", None)], environment=env)
    client = system.add_client(ClientId(0), ToyProtocol())
    client.enqueue("write", 1)
    system.kernel.force_client_step(ClientId(0))
    system.kernel.allowed_actions()
    system.kernel.allowed_actions()
    assert env.consultations == 2  # consulted afresh each time


def test_vetoed_run_blocks_like_before():
    env = _EpochedEnvironment()
    system = build_system(1, [(0, "register", None)], environment=env)
    client = system.add_client(ClientId(0), ToyProtocol())
    client.enqueue("write", 1)
    result = system.kernel.run(max_steps=100)
    assert result.reason == "blocked"


# -- round-robin queues: policy and memory bound ---------------------------


def test_round_robin_does_not_accumulate_responded_ops():
    """Long runs must not leak queue entries for dead op ids."""
    system = build_system(
        1, [(0, "register", None)], scheduler=RoundRobinScheduler()
    )
    client = system.add_client(ClientId(0), ToyProtocol())
    for index in range(200):
        client.enqueue("write", index)
    assert system.run_to_quiescence().satisfied
    scheduler = system.kernel.scheduler
    tracked = len(scheduler._fresh) + len(scheduler._served)
    # 200 writes = 200 distinct respond actions over the run; only the
    # client action plus at most a sweep-interval of stale responds may
    # remain tracked.
    assert tracked <= 1 + RoundRobinScheduler._SWEEP_INTERVAL
    responds = [
        action
        for queue in (scheduler._fresh, scheduler._served)
        for action in queue
        if action.kind is ActionKind.RESPOND
    ]
    live = [a for a in responds if a.op_id in system.kernel.pending]
    assert not live  # nothing pending at quiescence


def test_round_robin_policy_fresh_first_then_least_recent():
    scheduler = RoundRobinScheduler()
    a, b, c = (
        Action(ActionKind.CLIENT, client_id=ClientId(i)) for i in range(3)
    )
    # First pass: fresh actions win in first-seen order.
    assert scheduler.choose([a, b, c], None) == a
    assert scheduler.choose([a, b, c], None) == b
    assert scheduler.choose([a, b, c], None) == c
    # All served: least-recently-picked wins.
    assert scheduler.choose([a, b, c], None) == a
    assert scheduler.choose([b, c], None) == b
    # A newly appearing action is fresh and preempts the served ones.
    d = Action(ActionKind.CLIENT, client_id=ClientId(3))
    assert scheduler.choose([c, d], None) == d
    assert scheduler.choose([c, d], None) == c
