"""The typed error hierarchy and its CLI exit-code mapping."""

import pytest

from repro.cli import exit_code_for
from repro.errors import (
    QuorumUnavailable,
    ReproError,
    ShardCapacityExceeded,
    StaleShardMap,
    WireDecodeError,
    WriterBoundExceeded,
)


class TestHierarchy:
    # (class, legacy builtin it must keep satisfying)
    CASES = [
        (WriterBoundExceeded, ValueError),
        (QuorumUnavailable, RuntimeError),
        (StaleShardMap, RuntimeError),
        (ShardCapacityExceeded, RuntimeError),
        (WireDecodeError, ValueError),
    ]

    @pytest.mark.parametrize("error_class,legacy", CASES)
    def test_dual_inheritance(self, error_class, legacy):
        error = error_class("boom")
        assert isinstance(error, ReproError)
        assert isinstance(error, legacy)

    def test_one_root_catches_all(self):
        for error_class, _ in self.CASES:
            with pytest.raises(ReproError):
                raise error_class("boom")

    def test_legacy_handlers_still_work(self):
        # The shape the redesign must not break: pre-existing
        # ``except ValueError`` call sites around e.g. wire decoding.
        with pytest.raises(ValueError):
            raise WireDecodeError("truncated frame")
        with pytest.raises(RuntimeError):
            raise QuorumUnavailable("quorum gone")


class TestExitCodes:
    def test_each_class_gets_a_distinct_code(self):
        codes = [
            exit_code_for(error_class("x"))
            for error_class, _ in TestHierarchy.CASES
        ]
        assert codes == [3, 4, 5, 6, 7]
        assert len(set(codes)) == len(codes)

    def test_unknown_errors_fall_back_to_generic(self):
        assert exit_code_for(ReproError("x")) == 2
        assert exit_code_for(ValueError("x")) == 2

    def test_wire_decode_paths_raise_typed(self):
        from repro.net.wire import decode_binary_request, decode_request

        with pytest.raises(WireDecodeError):
            decode_request(b"not json\n")
        with pytest.raises(WireDecodeError):
            decode_binary_request(b"\x00garbage")
