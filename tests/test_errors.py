"""The typed error hierarchy and its CLI exit-code mapping."""

import pytest

from repro.cli import exit_code_for
from repro.errors import (
    BoundViolation,
    CellClaimLost,
    CodeVersionMismatch,
    GridFailed,
    InvalidConfig,
    NoMergeableResults,
    QueueError,
    QuorumUnavailable,
    ReproError,
    SessionClosed,
    ShardCapacityExceeded,
    StaleShardMap,
    UnknownExperiment,
    WireDecodeError,
    WriterBoundExceeded,
)


class TestHierarchy:
    # (class, legacy builtin it must keep satisfying)
    CASES = [
        (WriterBoundExceeded, ValueError),
        (QuorumUnavailable, RuntimeError),
        (StaleShardMap, RuntimeError),
        (ShardCapacityExceeded, RuntimeError),
        (WireDecodeError, ValueError),
        (InvalidConfig, ValueError),
        (BoundViolation, ValueError),
        (SessionClosed, RuntimeError),
        (QueueError, RuntimeError),
        (CellClaimLost, RuntimeError),
        (CodeVersionMismatch, RuntimeError),
        (GridFailed, RuntimeError),
        (NoMergeableResults, ValueError),
        (UnknownExperiment, ValueError),
    ]

    @pytest.mark.parametrize("error_class,legacy", CASES)
    def test_dual_inheritance(self, error_class, legacy):
        error = error_class("boom")
        assert isinstance(error, ReproError)
        assert isinstance(error, legacy)

    def test_one_root_catches_all(self):
        for error_class, _ in self.CASES:
            with pytest.raises(ReproError):
                raise error_class("boom")

    def test_legacy_handlers_still_work(self):
        # The shape the redesign must not break: pre-existing
        # ``except ValueError`` call sites around e.g. wire decoding.
        with pytest.raises(ValueError):
            raise WireDecodeError("truncated frame")
        with pytest.raises(RuntimeError):
            raise QuorumUnavailable("quorum gone")


class TestExitCodes:
    def test_each_class_gets_a_distinct_code(self):
        codes = [
            exit_code_for(error_class("x"))
            for error_class, _ in TestHierarchy.CASES
        ]
        assert codes == [3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]
        assert len(set(codes)) == len(codes)

    def test_queue_subclasses_keep_distinct_codes(self):
        # isinstance ordering: the claim-protocol subclasses must not
        # collapse into the generic QueueError code.
        assert exit_code_for(CellClaimLost("x")) == 12
        assert exit_code_for(CodeVersionMismatch("x")) == 13
        assert exit_code_for(QueueError("x")) == 11

    def test_queue_errors_catchable_as_family(self):
        for error_class in (CellClaimLost, CodeVersionMismatch):
            with pytest.raises(QueueError):
                raise error_class("boom")

    def test_registry_paths_raise_typed(self):
        from repro.experiments import get_experiment

        with pytest.raises(UnknownExperiment):
            get_experiment("NO-SUCH-EXPERIMENT")
        with pytest.raises(ValueError):  # legacy shape still works
            get_experiment("NO-SUCH-EXPERIMENT")

    def test_unknown_errors_fall_back_to_generic(self):
        assert exit_code_for(ReproError("x")) == 2
        assert exit_code_for(ValueError("x")) == 2

    def test_wire_decode_paths_raise_typed(self):
        from repro.net.wire import decode_binary_request, decode_request

        with pytest.raises(WireDecodeError):
            decode_request(b"not json\n")
        with pytest.raises(WireDecodeError):
            decode_binary_request(b"\x00garbage")

    def test_config_paths_raise_typed(self):
        # PR 8 migrations: the compat pattern means pre-existing
        # ``except ValueError``/``except RuntimeError`` handlers and
        # pytest.raises assertions keep passing unchanged.
        from repro.apps.kv import KVConfig, ReplicatedKVStore
        from repro.apps.shard.config import ShardConfig
        from repro.core import bounds

        with pytest.raises(InvalidConfig):
            ShardConfig(substrate="abacus")
        with pytest.raises(ValueError):  # legacy shape still works
            ShardConfig(n=1, f=3)
        with pytest.raises(InvalidConfig):
            KVConfig(k_writers=0)
        with pytest.raises(BoundViolation):
            bounds.register_upper_bound(0, 5, 2)
        with pytest.raises(ValueError):  # legacy shape still works
            bounds.min_servers(0)
        store = ReplicatedKVStore(KVConfig())
        session = store.session()
        session.close()
        with pytest.raises(SessionClosed):
            session.get("k")
        with pytest.raises(RuntimeError):  # legacy shape still works
            session.put("k", "v")
