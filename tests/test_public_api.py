"""The public API surface stays importable and complete."""

import pytest

import repro


class TestTopLevelSurface:
    EXPECTED = {
        "ABDEmulation",
        "AdversaryAdi",
        "CASABDEmulation",
        "Cell",
        "CollectMaxRegister",
        "ConfigService",
        "CoveringTracker",
        "Emulation",
        "EmulationSpec",
        "EpochService",
        "ExperimentResult",
        "FTMaxRegister",
        "Grid",
        "InstallRaced",
        "KVConfig",
        "KVSession",
        "Lemma1Runner",
        "MultiRegisterDeployment",
        "RegisterLayout",
        "ReplicatedKVStore",
        "ReplicatedMaxRegisterEmulation",
        "ReproError",
        "ResultCache",
        "ShardConfig",
        "ShardServiceConfig",
        "ShardedKVService",
        "SingleCASMaxRegister",
        "VerificationReport",
        "WSRegisterEmulation",
        "bounds",
        "check_ws_regular",
        "check_ws_safe",
        "is_linearizable",
        "is_register_history_atomic",
        "run_experiment",
        "run_experiment_grid",
        "run_loadgen",
        "run_workload",
        "verify_run",
        "write_sequential_workload",
    }

    def test_all_matches_expected(self):
        assert set(repro.__all__) == self.EXPECTED

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_alls_resolve(self):
        import repro.analysis
        import repro.apps
        import repro.consistency
        import repro.core
        import repro.exec
        import repro.sim
        import repro.workloads

        for module in (
            repro.analysis,
            repro.apps,
            repro.consistency,
            repro.core,
            repro.exec,
            repro.sim,
            repro.workloads,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (
                    f"{module.__name__}.{name} missing"
                )
