"""Tests for the workload runner across all emulations."""

import pytest

from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import CASABDEmulation
from repro.core.collect_maxreg import ReplicatedMaxRegisterEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler
from repro.workloads.generators import (
    concurrent_workload,
    write_sequential_workload,
)
from repro.workloads.runner import run_workload


class TestAgainstAlgorithm2:
    def test_write_sequential_completes(self):
        emu = WSRegisterEmulation(
            k=2, n=5, f=2, scheduler=RandomScheduler(0)
        )
        workload = write_sequential_workload(k=2, writes_per_writer=2)
        report = run_workload(emu, workload)
        assert report.completed_rounds == len(workload.rounds)
        assert check_ws_regular(report.history, cross_check=True) == []

    def test_resource_consumption_reported(self):
        emu = WSRegisterEmulation(
            k=2, n=5, f=2, scheduler=RandomScheduler(1)
        )
        workload = write_sequential_workload(k=2, writes_per_writer=1)
        report = run_workload(emu, workload)
        # collect() touches every register, so consumption = all of them.
        assert report.resource_consumption == emu.layout.total_registers

    def test_contention_one_in_sequential_runs(self):
        emu = WSRegisterEmulation(
            k=2, n=5, f=2, scheduler=RandomScheduler(2)
        )
        workload = write_sequential_workload(
            k=2, writes_per_writer=1, n_readers=1
        )
        report = run_workload(emu, workload)
        assert report.contention.run_point_contention == 1

    def test_concurrent_workload_wait_free(self):
        emu = WSRegisterEmulation(
            k=2, n=5, f=2, scheduler=RandomScheduler(3)
        )
        workload = concurrent_workload(k=2, n_rounds=2, n_readers=1)
        report = run_workload(emu, workload)
        assert report.completed_rounds == len(workload.rounds)
        assert report.contention.run_point_contention >= 2


class TestAgainstABDVariants:
    @pytest.mark.parametrize(
        "emulation_cls", [ABDEmulation, CASABDEmulation]
    )
    def test_sequential_atomicity(self, emulation_cls):
        emu = emulation_cls(n=5, f=2, scheduler=RandomScheduler(4))
        workload = write_sequential_workload(
            k=2, writes_per_writer=1, n_readers=1
        )
        report = run_workload(emu, workload)
        assert report.completed_rounds == len(workload.rounds)
        assert is_register_history_atomic(report.history)

    def test_abd_concurrent_atomicity(self):
        emu = ABDEmulation(n=5, f=2, scheduler=RandomScheduler(5))
        workload = concurrent_workload(k=3, n_rounds=2, n_readers=2)
        report = run_workload(emu, workload)
        assert report.completed_rounds == len(workload.rounds)
        assert is_register_history_atomic(report.history)


class TestAgainstReplicated:
    def test_ws_regular(self):
        emu = ReplicatedMaxRegisterEmulation(
            k=2, n=5, f=2, scheduler=RandomScheduler(6)
        )
        workload = write_sequential_workload(
            k=2, writes_per_writer=2, n_readers=1
        )
        report = run_workload(emu, workload)
        assert report.completed_rounds == len(workload.rounds)
        assert check_ws_regular(report.history, cross_check=True) == []


class TestMetrics:
    def test_steps_per_op_recorded(self):
        emu = WSRegisterEmulation(
            k=1, n=3, f=1, scheduler=RandomScheduler(7)
        )
        workload = write_sequential_workload(k=1, writes_per_writer=2)
        report = run_workload(emu, workload)
        assert report.steps.mean_triggers() > 0
        assert report.steps.mean_duration() > 0

    def test_max_covered_bounded_by_layout(self):
        emu = WSRegisterEmulation(
            k=2, n=5, f=2, scheduler=RandomScheduler(8)
        )
        workload = write_sequential_workload(k=2, writes_per_writer=2)
        report = run_workload(emu, workload)
        assert 0 <= report.max_covered <= emu.layout.total_registers
