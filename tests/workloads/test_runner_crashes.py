"""Tests for crash plans threaded through the workload runner."""

from repro.consistency.ws import check_ws_regular
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.failures import CrashPlan
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler
from repro.workloads.generators import write_sequential_workload
from repro.workloads.runner import run_workload


class TestRunnerWithCrashPlan:
    def test_crashes_fire_during_workload(self):
        emu = WSRegisterEmulation(k=2, n=5, f=2, scheduler=RandomScheduler(3))
        plan = CrashPlan()
        plan.crash_server_at(50, ServerId(0))
        plan.crash_server_at(120, ServerId(4))
        workload = write_sequential_workload(
            k=2, writes_per_writer=2, reads_between=1
        )
        report = run_workload(emu, workload, crash_plan=plan)
        assert report.completed_rounds == len(workload.rounds)
        assert emu.object_map.crashed_servers == {ServerId(0), ServerId(4)}
        assert check_ws_regular(report.history, cross_check=True) == []

    def test_no_plan_still_works(self):
        emu = WSRegisterEmulation(k=1, n=3, f=1, scheduler=RandomScheduler(4))
        workload = write_sequential_workload(k=1, writes_per_writer=1)
        report = run_workload(emu, workload)
        assert report.completed_rounds == len(workload.rounds)

    def test_predicate_crash_with_runner(self):
        emu = WSRegisterEmulation(k=1, n=3, f=1, scheduler=RandomScheduler(5))
        plan = CrashPlan()
        plan.crash_server_when(lambda k: k.time > 30, ServerId(1))
        workload = write_sequential_workload(
            k=1, writes_per_writer=3, reads_between=1
        )
        report = run_workload(emu, workload, crash_plan=plan)
        assert report.completed_rounds == len(workload.rounds)
        assert ServerId(1) in emu.object_map.crashed_servers
