"""The workload runner drives shared-fleet register views too."""

from repro.consistency.ws import check_ws_regular
from repro.core.multi import MultiRegisterDeployment
from repro.sim.scheduling import RandomScheduler
from repro.workloads.generators import write_sequential_workload
from repro.workloads.runner import run_workload


class TestRunnerOverRegisterViews:
    def test_view_satisfies_runner_interface(self):
        deployment = MultiRegisterDeployment(
            m=2, k=2, n=5, f=2, scheduler=RandomScheduler(2)
        )
        view = deployment.register(0)
        workload = write_sequential_workload(
            k=2, writes_per_writer=1, reads_between=1
        )
        report = run_workload(view, workload)
        assert report.completed_rounds == len(workload.rounds)
        assert check_ws_regular(report.history, cross_check=True) == []

    def test_meters_see_shared_fleet_traffic(self):
        deployment = MultiRegisterDeployment(
            m=2, k=1, n=5, f=2, scheduler=RandomScheduler(3)
        )
        # Run a workload on view 0 while view 1 idles: the resource meter
        # (attached to the shared kernel) counts only objects touched.
        view = deployment.register(0)
        workload = write_sequential_workload(k=1, writes_per_writer=1)
        report = run_workload(view, workload)
        own = {
            oid
            for writer in range(1)
            for oid in view.layout.registers_for_writer(writer)
        }
        assert set(report.resource.used) <= own
