"""Tests for workload generators."""

from repro.workloads.generators import (
    Invocation,
    concurrent_workload,
    read_heavy_workload,
    write_sequential_workload,
)


class TestWriteSequentialWorkload:
    def test_counts(self):
        workload = write_sequential_workload(
            k=3, writes_per_writer=2, reads_between=1, n_readers=2
        )
        assert workload.n_writes == 6
        assert workload.n_reads == 12

    def test_is_write_sequential(self):
        workload = write_sequential_workload(k=3)
        assert workload.is_write_sequential

    def test_writer_indices(self):
        workload = write_sequential_workload(k=4)
        assert workload.writer_indices == [0, 1, 2, 3]

    def test_unique_values(self):
        workload = write_sequential_workload(k=3, writes_per_writer=3)
        values = [
            inv.args[0]
            for rnd in workload.rounds
            for inv in rnd
            if inv.is_write
        ]
        assert len(set(values)) == len(values)


class TestConcurrentWorkload:
    def test_not_write_sequential(self):
        workload = concurrent_workload(k=3, n_rounds=2)
        assert not workload.is_write_sequential

    def test_deterministic_given_seed(self):
        a = concurrent_workload(k=2, n_rounds=3, seed=5)
        b = concurrent_workload(k=2, n_rounds=3, seed=5)
        assert a.rounds == b.rounds

    def test_different_seeds_shuffle_differently(self):
        a = concurrent_workload(k=4, n_rounds=4, seed=1)
        b = concurrent_workload(k=4, n_rounds=4, seed=2)
        assert a.rounds != b.rounds

    def test_reader_indices(self):
        workload = concurrent_workload(k=2, n_readers=3)
        assert workload.reader_indices == [0, 1, 2]


class TestReadHeavyWorkload:
    def test_shape(self):
        workload = read_heavy_workload(
            k=2, n_writes=3, reads_per_write=2, n_readers=2
        )
        assert workload.n_writes == 3
        assert workload.n_reads == 12
        assert workload.is_write_sequential


class TestInvocation:
    def test_is_write(self):
        assert Invocation(("writer", 0), "write", ("v",)).is_write
        assert not Invocation(("reader", 0), "read").is_write
