"""Keep documentation honest: the README snippet and every example run.

Examples execute in-process via ``runpy`` (they all end with a
``main()`` guard), so a broken public API breaks this suite immediately.
"""

import pathlib
import runpy

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
EXAMPLES = sorted(
    path.name for path in (REPO_ROOT / "examples").glob("*.py")
)


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        """The exact code block from README.md."""
        from repro import WSRegisterEmulation, check_ws_regular
        from repro.sim.ids import ServerId

        emu = WSRegisterEmulation(k=2, n=5, f=2)
        writer = emu.add_writer(0)
        reader = emu.add_reader()

        writer.enqueue("write", "hello")
        emu.system.run_to_quiescence()

        emu.kernel.crash_server(ServerId(0))
        emu.kernel.crash_server(ServerId(3))

        reader.enqueue("read")
        emu.system.run_to_quiescence()
        assert emu.history.reads[-1].result == "hello"
        assert not check_ws_regular(emu.history)

    def test_package_docstring_quickstart(self):
        import repro

        assert "WSRegisterEmulation" in (repro.__doc__ or "")


class TestExamplesRun:
    def test_expected_examples_present(self):
        assert EXAMPLES == [
            "cloud_kv_demo.py",
            "config_service.py",
            "covering_attack.py",
            "epoch_service.py",
            "figure2_trace.py",
            "layout_explorer.py",
            "quickstart.py",
            "shared_fleet.py",
            "straggler_fleet.py",
        ]

    @pytest.mark.parametrize("example", EXAMPLES)
    def test_example_executes(self, example, capsys):
        runpy.run_path(
            str(REPO_ROOT / "examples" / example), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert out.strip(), f"{example} printed nothing"
