"""Grid/Cell expansion semantics."""

import pickle

import pytest

from repro.exec.grid import Cell, Grid, expand_experiment


class TestCell:
    def test_make_sorts_params_and_freezes(self):
        cell = Cell.make("T1", {"n": 5, "k": 2, "vals": [1, 2]})
        assert cell.params == (("k", 2), ("n", 5), ("vals", (1, 2)))

    def test_seed_key_moves_to_slot(self):
        cell = Cell.make("T1", {"k": 2, "seed": 7})
        assert cell.seed == 7
        assert "seed" not in cell.kwargs

    def test_hashable_and_picklable(self):
        cell = Cell.make("T1", {"k": 2, "vals": [1, 2]}, seed=1)
        assert hash(cell) == hash(pickle.loads(pickle.dumps(cell)))
        assert pickle.loads(pickle.dumps(cell)) == cell

    def test_describe(self):
        assert Cell.make("T1", {}, seed=3).describe() == "T1 [seed=3]"
        assert Cell.make("T1").describe() == "T1"


class TestGrid:
    def test_cartesian_expansion_order(self):
        grid = Grid("T1", base={"f": 1}, axes={"k": [1, 2], "n": [3, 4]})
        cells = grid.cells()
        assert len(cells) == len(grid) == 4
        combos = [(c.kwargs["k"], c.kwargs["n"]) for c in cells]
        assert combos == [(1, 3), (1, 4), (2, 3), (2, 4)]
        assert all(c.kwargs["f"] == 1 for c in cells)

    def test_replicate_seeds_innermost(self):
        grid = Grid("T1", axes={"k": [1, 2]}, seeds=[10, 11])
        cells = grid.cells()
        assert [(c.kwargs["k"], c.seed) for c in cells] == [
            (1, 10),
            (1, 11),
            (2, 10),
            (2, 11),
        ]


class TestExpandExperiment:
    def test_axis_experiment_shards_per_value(self):
        cells = expand_experiment("T1-sweep", {"n": 5, "f": 2, "k_max": 3})
        assert len(cells) == 3
        assert [c.kwargs["k_values"] for c in cells] == [(1,), (2,), (3,)]

    def test_pinned_axis_respected(self):
        cells = expand_experiment("TH2", {"k_values": (2, 4)})
        assert [c.kwargs["k_values"] for c in cells] == [(2,), (4,)]

    def test_non_axis_experiment_single_cell(self):
        cells = expand_experiment("T1", {"k": 2, "n": 5, "f": 2}, seed=9)
        assert len(cells) == 1
        assert cells[0].seed == 9

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError):
            expand_experiment("NOPE", {})

    def test_function_name_alias(self):
        assert expand_experiment("table1_sweep", {"k_max": 2})[0].experiment_id in (
            "T1-sweep",
            "table1_sweep",
        )
