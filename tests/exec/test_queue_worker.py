"""Queue workers: claim/execute/write-back, caching, versions, races."""

import threading

import pytest

from repro.errors import CodeVersionMismatch, QueueError
from repro.exec import ResultCache, run_experiment_grid
from repro.exec.cache import experiment_code_version
from repro.exec.engine import CACHED, FAILED, OK
from repro.exec.grid import Cell, expand_experiment
from repro.exec.queue import (
    DONE,
    QueueWorker,
    SqliteQueue,
    enqueue_cells,
    run_cells_via_queue,
)
from repro.experiments import ExperimentResult, experiment, run_experiment

SWEEP = {"k": 3, "f": 1}


@pytest.fixture
def queue(tmp_path):
    backend = SqliteQueue(tmp_path / "q.db")
    yield backend
    backend.close()


@pytest.fixture(autouse=True)
def _raising_experiment():
    from repro.experiments import _REGISTRY

    @experiment("Q-RAISE")
    def _raise() -> ExperimentResult:
        raise RuntimeError("deliberate failure")

    yield
    _REGISTRY.pop("Q-RAISE", None)


def _cells():
    return expand_experiment("TH1", SWEEP)


class TestSingleWorker:
    def test_drains_the_queue_and_matches_serial(self, queue):
        cells = _cells()
        enqueue_cells(queue, cells)
        report = QueueWorker(queue, worker_id="w1").run()
        assert report.claimed == len(cells)
        assert report.done == len(cells)
        assert report.failed == 0 and report.lost == 0
        assert queue.drained()
        for row in queue.rows():
            assert row.status == DONE
            assert row.owner == "w1"
            assert row.attempts == 1

    def test_max_cells_stops_early(self, queue):
        enqueue_cells(queue, _cells())
        report = QueueWorker(queue, worker_id="w1").run(max_cells=2)
        assert report.claimed == 2
        assert not queue.drained()

    def test_failed_cell_records_the_traceback(self, queue):
        enqueue_cells(queue, [Cell.make("Q-RAISE")])
        report = QueueWorker(queue, worker_id="w1").run()
        assert report.failed == 1
        (row,) = queue.rows()
        assert row.status == "failed"
        assert "deliberate failure" in row.error

    def test_nonpositive_ttl_rejected(self, queue):
        with pytest.raises(QueueError):
            QueueWorker(queue, ttl=0)


class TestCacheIntegration:
    def test_write_back_populates_the_local_cache(self, queue, tmp_path):
        cells = _cells()
        enqueue_cells(queue, cells)
        cache = ResultCache(tmp_path / "cache")
        QueueWorker(queue, worker_id="w1", cache=cache).run()
        assert len(cache) == len(cells)
        # A local grid run over the same cells now replays from cache.
        replay = ResultCache(tmp_path / "cache")
        _, report = run_experiment_grid("TH1", SWEEP, cache=replay)
        assert report.cache_hits == len(cells)
        assert report.total_steps == 0

    def test_cached_cells_write_back_without_executing(
        self, queue, tmp_path
    ):
        cells = _cells()
        cache = ResultCache(tmp_path / "cache")
        run_experiment_grid("TH1", SWEEP, cache=cache)  # warm locally
        enqueue_cells(queue, cells)
        report = QueueWorker(
            queue, worker_id="w1", cache=ResultCache(tmp_path / "cache")
        ).run()
        assert report.cache_hits == len(cells)
        assert report.steps == 0
        assert all(row.status == DONE for row in queue.rows())
        statuses = {o.status for o in report.outcomes.values()}
        assert statuses == {CACHED}


class TestVersionGuard:
    def test_mismatched_fingerprint_refuses_the_claim(self, queue):
        cells = _cells()[:1]
        enqueue_cells(queue, cells)
        # Tamper the recorded fingerprint, as if the enqueuer ran
        # different experiment code.
        with queue._lock:
            queue._conn.execute(
                "UPDATE cells SET code_version = 'deadbeef' || code_version"
            )
        with pytest.raises(CodeVersionMismatch) as info:
            QueueWorker(queue, worker_id="w1").run()
        assert "--no-version-check" in str(info.value)
        # The cell was not claimed, let alone executed.
        (row,) = queue.rows()
        assert row.status == "open"
        assert row.attempts == 0

    def test_no_version_check_executes_anyway(self, queue):
        enqueue_cells(queue, _cells()[:1])
        with queue._lock:
            queue._conn.execute(
                "UPDATE cells SET code_version = 'deadbeef'"
            )
        report = QueueWorker(
            queue, worker_id="w1", check_version=False
        ).run()
        assert report.done == 1


class TestConcurrentWorkers:
    def test_two_workers_claim_disjoint_cells_each_once(self, tmp_path):
        shared = tmp_path / "shared.db"
        setup = SqliteQueue(shared)
        cells = expand_experiment("T1-sweep", {"n": 5, "f": 2, "k_max": 3})
        cells += _cells()
        enqueue_cells(setup, cells)
        setup.close()

        reports = {}

        def work(name):
            backend = SqliteQueue(shared)
            try:
                reports[name] = QueueWorker(backend, worker_id=name).run()
            finally:
                backend.close()

        threads = [
            threading.Thread(target=work, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        audit = SqliteQueue(shared)
        try:
            rows = audit.rows()
        finally:
            audit.close()
        assert all(row.status == DONE for row in rows)
        # Exactly one execution per cell, split across the two owners.
        assert all(row.attempts == 1 for row in rows)
        assert sum(r.claimed for r in reports.values()) == len(cells)
        owners = {row.cell_id: row.owner for row in rows}
        for name, report in reports.items():
            for cell_id in report.outcomes:
                assert owners[cell_id] == name


class TestEngineBackend:
    def test_queue_backend_matches_serial_table(self, tmp_path):
        serial = run_experiment("TH1", **SWEEP)
        merged, report = run_experiment_grid(
            "TH1", SWEEP, backend="queue",
            queue_path=tmp_path / "grid.db",
        )
        assert not report.failed
        assert merged.render() == serial.render()
        assert [o.status for o in report.outcomes] == [OK] * 5

    def test_queue_backend_defaults_to_a_temp_file(self):
        serial = run_experiment("TH1", **SWEEP)
        merged, report = run_experiment_grid("TH1", SWEEP, backend="queue")
        assert merged.render() == serial.render()

    def test_unknown_backend_rejected(self):
        from repro.errors import InvalidConfig

        with pytest.raises(InvalidConfig):
            run_experiment_grid("TH1", SWEEP, backend="carrier-pigeon")

    def test_foreign_done_rows_come_back_cached(self, queue):
        cells = _cells()
        enqueue_cells(queue, cells)
        QueueWorker(queue, worker_id="other-box").run()
        # A second participant joins after the drain: every outcome is
        # served from the table, nothing executes.
        report = run_cells_via_queue(cells, queue)
        assert [o.status for o in report.outcomes] == [CACHED] * len(cells)
        assert report.total_steps == 0

    def test_failed_rows_surface_in_the_report(self, queue):
        cells = [Cell.make("Q-RAISE")] + _cells()[:1]
        enqueue_cells(queue, cells)
        report = run_cells_via_queue(cells, queue)
        assert [o.status for o in report.outcomes][0] == FAILED
        assert "deliberate failure" in report.outcomes[0].error
        assert report.outcomes[1].status == OK


class TestCLI:
    def test_create_work_status_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "cli.db")
        assert main(
            ["queue", "create", "--db", db, "TH1",
             "--params", '{"k": 3, "f": 1}']
        ) == 0
        out = capsys.readouterr().out
        assert "enqueued 5 new cell(s)" in out
        assert main(
            ["queue", "work", "--db", db,
             "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        assert main(["queue", "status", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "done=5" in out

    def test_create_without_ids_is_a_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["queue", "create", "--db", str(tmp_path / "x.db")]
        ) == 2

    def test_status_json_carries_per_cell_detail(self, tmp_path, capsys):
        import json

        from repro.cli import main

        db = str(tmp_path / "cli.db")
        main(["queue", "create", "--db", db, "TH1",
              "--params", '{"k": 3, "f": 1}'])
        capsys.readouterr()
        assert main(["queue", "status", "--db", db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["open"] == 5
        assert len(payload["cells"]) == 5
        assert {"cell_id", "status", "owner", "attempts"} <= set(
            payload["cells"][0]
        )

    def test_reset_needs_a_selector(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "cli.db")
        main(["queue", "create", "--db", db, "TH1",
              "--params", '{"k": 3, "f": 1}'])
        assert main(["queue", "reset", "--db", db]) == 2
        assert main(["queue", "reset", "--db", db, "--failed"]) == 0

    def test_seeds_flag_enqueues_replicate_grids(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "cli.db")
        assert main(
            ["queue", "create", "--db", db, "TH2", "--seeds", "1,2"]
        ) == 0
        backend = SqliteQueue(db)
        try:
            seeds = {row.seed for row in backend.rows()}
        finally:
            backend.close()
        assert seeds == {1, 2}
