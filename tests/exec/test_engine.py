"""The grid engine: serial/parallel equivalence, crash survival, caching."""

import os

import pytest

from repro.exec import ResultCache, run_cells, run_experiment_grid
from repro.exec.engine import CACHED, FAILED, OK, merge_results
from repro.exec.grid import Cell, expand_experiment
from repro.experiments import ExperimentResult, experiment, run_experiment

SWEEP_KWARGS = {"n": 5, "f": 2, "k_max": 3}


@pytest.fixture(autouse=True)
def _fault_experiments():
    """Register fault-injection experiments, cleaning the registry after
    (other tests pin the exact registry contents).  The engine's forked
    pool workers inherit the live registry, so these run in workers too."""
    from repro.experiments import _REGISTRY

    @experiment("X-CRASH")
    def _crashing_experiment(hard: bool = True) -> ExperimentResult:
        # Dies without cleanup, like a segfaulting worker.
        if hard:
            os._exit(42)
        return ExperimentResult("X-CRASH", "no crash", ["ok"], [[1]])

    @experiment("X-RAISE")
    def _raising_experiment() -> ExperimentResult:
        raise RuntimeError("deliberate failure")

    yield
    _REGISTRY.pop("X-CRASH", None)
    _REGISTRY.pop("X-RAISE", None)


class TestSerialParallelEquivalence:
    def test_same_tables_serial_vs_jobs4(self):
        serial = run_experiment("T1-sweep", **SWEEP_KWARGS)
        merged, report = run_experiment_grid("T1-sweep", SWEEP_KWARGS, jobs=4)
        assert not report.failed
        assert merged.render() == serial.render()

    def test_same_tables_with_simulation_and_seeds(self):
        serial = run_experiment("TH2", k_values=(1, 2, 3), seed=1)
        merged, report = run_experiment_grid(
            "TH2", {"k_values": (1, 2, 3)}, seed=1, jobs=2
        )
        assert not report.failed
        assert merged.render() == serial.render()
        assert merged.seed == 1

    def test_outcomes_in_cell_order_not_completion_order(self):
        cells = expand_experiment("T1-sweep", SWEEP_KWARGS)
        report = run_cells(cells, jobs=4)
        assert [o.cell for o in report.outcomes] == cells


class TestCrashSurvival:
    def test_worker_crash_marks_cell_failed_and_grid_continues(self):
        cells = [
            Cell.make("T1-sweep", {"n": 5, "f": 2, "k_values": [1]}),
            Cell.make("X-CRASH", {"hard": True}),
            Cell.make("T1-sweep", {"n": 5, "f": 2, "k_values": [2]}),
            Cell.make("TH2", {"k_values": [2]}),
        ]
        report = run_cells(cells, jobs=2)
        statuses = [o.status for o in report.outcomes]
        assert statuses == [OK, FAILED, OK, OK]
        assert report.outcomes[1].error is not None

    def test_worker_exception_ships_traceback(self):
        report = run_cells([Cell.make("X-RAISE")], jobs=2)
        (outcome,) = report.outcomes
        assert outcome.status == FAILED
        assert "deliberate failure" in outcome.error

    def test_serial_failure_marks_and_continues(self):
        cells = [
            Cell.make("X-RAISE"),
            Cell.make("T1-sweep", {"n": 5, "f": 2, "k_values": [1]}),
        ]
        report = run_cells(cells, jobs=1)
        assert [o.status for o in report.outcomes] == [FAILED, OK]

    def test_all_cells_failed_raises(self):
        with pytest.raises(RuntimeError):
            run_experiment_grid("X-RAISE", {}, jobs=1)


class TestCacheIntegration:
    def test_second_run_all_hits_zero_steps(self, tmp_path):
        kwargs = {"k": 2, "n": 5, "f": 2}  # T1 actually simulates
        first = ResultCache(tmp_path / "cache")
        merged1, report1 = run_experiment_grid("T1", kwargs, cache=first)
        assert report1.cache_misses == 1 and report1.total_steps > 0

        second = ResultCache(tmp_path / "cache")
        merged2, report2 = run_experiment_grid("T1", kwargs, cache=second)
        assert report2.cache_hits == 1 and report2.cache_misses == 0
        assert report2.total_steps == 0  # nothing simulated at all
        assert [o.status for o in report2.outcomes] == [CACHED]
        assert merged2.render() == merged1.render()

    def test_parallel_run_populates_cache_for_serial(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_experiment_grid("T1-sweep", SWEEP_KWARGS, jobs=3, cache=cache)
        again = ResultCache(tmp_path / "cache")
        _, report = run_experiment_grid("T1-sweep", SWEEP_KWARGS, cache=again)
        assert report.cache_hits == 3

    def test_refresh_bypasses_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_experiment_grid("T1", {"k": 2, "n": 5, "f": 2}, cache=cache)
        _, report = run_experiment_grid(
            "T1", {"k": 2, "n": 5, "f": 2}, cache=cache, refresh=True
        )
        assert report.total_steps > 0  # recomputed despite a fresh entry

    def test_failed_cells_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        report = run_cells([Cell.make("X-RAISE")], jobs=1, cache=cache)
        assert report.outcomes[0].status == FAILED
        assert len(cache) == 0


class TestMergeAndProgress:
    def test_merge_skips_failed_shards(self):
        a = ExperimentResult("E", "t", ["h"], [[1]])
        b = ExperimentResult("E", "t", ["h"], [[2]])
        merged = merge_results([a, None, b])
        assert merged.rows == [[1], [2]]

    def test_merge_nothing_raises(self):
        with pytest.raises(ValueError):
            merge_results([None])

    def test_progress_stream_reports_every_cell_and_summary(self):
        lines = []
        run_cells(
            expand_experiment("T1-sweep", SWEEP_KWARGS),
            jobs=2,
            progress=lines.append,
        )
        assert len(lines) == 4  # 3 cells + summary
        assert lines[-1].startswith("engine: cells=3")
        assert any("steps/s" in line or "steps," in line for line in lines)

    def test_run_experiment_seed_recorded_in_payload(self):
        result = run_experiment("T1", k=2, n=5, f=2, seed=4)
        assert result.to_dict()["seed"] == 4
