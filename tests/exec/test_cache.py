"""Persistent result cache: keying, hit/miss/refresh semantics."""

import json

from repro.exec.cache import ResultCache, cell_key, experiment_code_version
from repro.exec.engine import CACHED, OK, execute_cell
from repro.exec.grid import Cell


def _cell(**kwargs):
    return Cell.make("TH2", {"k_values": (2,), **kwargs})


class TestKeys:
    def test_key_stable_for_equal_cells(self):
        assert cell_key(_cell()) == cell_key(_cell())

    def test_key_changes_with_params(self):
        assert cell_key(_cell()) != cell_key(
            Cell.make("TH2", {"k_values": (3,)})
        )

    def test_key_changes_with_seed(self):
        assert cell_key(_cell()) != cell_key(_cell(seed=5))

    def test_key_changes_with_code_version(self):
        assert cell_key(_cell(), "deadbeef") != cell_key(_cell(), "cafef00d")

    def test_code_version_is_memoized_hex(self):
        version = experiment_code_version("TH2")
        assert version == experiment_code_version("TH2")
        int(version, 16)  # sha256 hex


class TestCacheSemantics:
    def test_miss_then_store_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = _cell()
        assert cache.load(cell) is None
        assert (cache.hits, cache.misses) == (0, 1)

        outcome = execute_cell(cell, cache=cache)
        assert outcome.status == OK
        assert cache.stores == 1
        assert len(cache) == 1

        hit = execute_cell(cell, cache=cache)
        assert hit.status == CACHED
        assert hit.steps == 0
        assert cache.hits == 1
        assert hit.result.render() == outcome.result.render()

    def test_refresh_recomputes_and_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = _cell()
        execute_cell(cell, cache=cache)
        refreshed = execute_cell(cell, cache=cache, refresh=True)
        assert refreshed.status == OK  # ran again, did not serve the entry
        assert cache.stores == 2
        assert len(cache) == 1  # overwrote, not duplicated

    def test_entries_are_valid_json_with_result(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = _cell()
        execute_cell(cell, cache=cache)
        (path,) = (tmp_path / "cache").glob("*/*.json")
        payload = json.loads(path.read_text())
        assert payload["result"]["experiment_id"] == "TH2"
        assert "steps" in payload and "elapsed" in payload

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = _cell()
        path = cache.store(cell, {"result": {}})
        path.write_text("{not json")
        assert cache.load(cell) is None
        assert cache.misses == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        execute_cell(_cell(), cache=cache)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestTransportKeying:
    """Transport configuration is part of a cell's identity: a lossy run
    must never be served an InProc entry (or vice versa), and any change
    to the fault plan or its seed must change the key."""

    def test_transport_config_distinguishes_cells(self):
        from repro.net import TransportConfig, chaos_faults

        inproc = _cell(transport=TransportConfig.inproc())
        lossy = _cell(transport=TransportConfig.lossy(chaos_faults(), seed=3))
        assert cell_key(_cell()) != cell_key(inproc)
        assert cell_key(inproc) != cell_key(lossy)

    def test_fault_plan_parameters_change_the_key(self):
        from repro.net import TransportConfig, chaos_faults

        keys = {
            cell_key(_cell(transport=TransportConfig.lossy(plan, seed=seed)))
            for plan, seed in [
                (chaos_faults(drop=0.1), 3),
                (chaos_faults(drop=0.2), 3),
                (chaos_faults(drop=0.1), 4),
            ]
        }
        assert len(keys) == 3

    def test_equal_configs_share_a_key(self):
        from repro.net import TransportConfig, chaos_faults

        first = _cell(transport=TransportConfig.lossy(chaos_faults(), seed=1))
        second = _cell(transport=TransportConfig.lossy(chaos_faults(), seed=1))
        assert cell_key(first) == cell_key(second)

    def test_direct_and_constructor_built_lossy_share_a_key(self):
        from repro.net import TransportConfig

        direct = _cell(transport=TransportConfig(kind="lossy"))
        built = _cell(transport=TransportConfig.lossy())
        assert cell_key(direct) == cell_key(built)

    def test_lossy_sweep_never_serves_an_inproc_hit(self, tmp_path):
        from repro.net import TransportConfig, chaos_faults

        cache = ResultCache(tmp_path / "cache")
        inproc_cell = _cell(transport=TransportConfig.inproc())
        cache.store(inproc_cell, {"payload": "inproc run"})

        lossy_cell = _cell(
            transport=TransportConfig.lossy(chaos_faults(), seed=3)
        )
        assert cache.load(lossy_cell) is None  # miss, not a stale hit
        assert cache.load(inproc_cell) == {"payload": "inproc run"}
