"""The shared experiment table: rows, CAS transitions, resets."""

import sqlite3
import threading

import pytest

from repro.errors import CellClaimLost, InvalidConfig, QueueError
from repro.exec.cache import cell_key, experiment_code_version
from repro.exec.grid import Cell, expand_experiment
from repro.exec.queue import (
    CLAIMED,
    DONE,
    FAILED,
    OPEN,
    SqliteQueue,
    cell_to_row,
    enqueue_cells,
)


@pytest.fixture
def queue(tmp_path):
    backend = SqliteQueue(tmp_path / "q.db")
    yield backend
    backend.close()


def _cells():
    return expand_experiment("TH1", {"k": 3, "f": 1})


class TestRowModel:
    def test_cell_id_is_the_result_cache_key(self):
        cell = _cells()[0]
        version = experiment_code_version(cell.experiment_id)
        row = cell_to_row(cell, 0, version)
        assert row.cell_id == cell_key(cell, version)

    def test_row_cell_round_trips_to_the_same_hash(self):
        # JSON turns tuples into lists; Cell.make re-freezes them, so
        # the rebuilt cell must be == and hash-identical.
        cell = Cell.make("T1-sweep", {"n": 5, "f": 2, "k_values": [1, 2]})
        row = cell_to_row(cell, 0, "v0")
        assert row.cell() == cell
        assert cell_key(row.cell(), "v0") == row.cell_id

    def test_non_json_params_rejected_eagerly(self):
        cell = Cell.make("T1", {"k": 2})
        bad = Cell(cell.experiment_id, (("fn", print),), None)
        with pytest.raises(InvalidConfig):
            cell_to_row(bad, 0, "v0")

    def test_seed_rides_along(self):
        cell = Cell.make("TH2", {"k_values": [2]}, seed=7)
        row = cell_to_row(cell, 0, "v0")
        assert row.seed == 7
        assert row.cell().seed == 7


class TestEnqueue:
    def test_enqueue_is_idempotent(self, queue):
        cells = _cells()
        assert enqueue_cells(queue, cells) == len(cells)
        assert enqueue_cells(queue, cells) == 0
        assert len(queue.rows()) == len(cells)

    def test_second_grid_numbers_after_the_first(self, queue):
        enqueue_cells(queue, _cells())
        tail = expand_experiment("TH2", {"k_values": (1, 2)})
        enqueue_cells(queue, tail)
        indices = [row.index for row in queue.rows()]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)

    def test_rows_come_back_in_index_order(self, queue):
        cells = _cells()
        enqueue_cells(queue, cells)
        assert [row.cell() for row in queue.rows()] == cells

    def test_schema_version_mismatch_refuses_to_open(self, tmp_path):
        path = tmp_path / "old.db"
        SqliteQueue(path).close()
        conn = sqlite3.connect(str(path))
        conn.execute(
            "UPDATE queue_meta SET value = '999'"
            " WHERE key = 'schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(QueueError):
            SqliteQueue(path)


class TestClaims:
    def test_claim_is_compare_and_swap(self, queue):
        enqueue_cells(queue, _cells())
        (row,) = queue.next_open(limit=1)
        assert queue.try_claim(row.cell_id, "w1", now=1.0)
        assert not queue.try_claim(row.cell_id, "w2", now=1.0)
        claimed = queue.get(row.cell_id)
        assert claimed.status == CLAIMED
        assert claimed.owner == "w1"
        assert claimed.attempts == 1

    def test_racing_claims_resolve_to_one_winner(self, tmp_path):
        shared = tmp_path / "race.db"
        setup = SqliteQueue(shared)
        enqueue_cells(setup, _cells()[:1])
        (row,) = setup.rows()
        setup.close()

        wins = []

        def contender(name):
            backend = SqliteQueue(shared)
            try:
                if backend.try_claim(row.cell_id, name, now=1.0):
                    wins.append(name)
            finally:
                backend.close()

        threads = [
            threading.Thread(target=contender, args=(f"w{i}",))
            for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 1

    def test_heartbeat_renewal_requires_ownership(self, queue):
        enqueue_cells(queue, _cells())
        (row,) = queue.next_open(limit=1)
        queue.try_claim(row.cell_id, "w1", now=1.0)
        assert queue.renew_heartbeat(row.cell_id, "w1", now=2.0)
        assert not queue.renew_heartbeat(row.cell_id, "w2", now=2.0)
        assert queue.get(row.cell_id).heartbeat == 2.0


class TestWriteBack:
    def test_done_write_back_archives_the_result(self, queue):
        enqueue_cells(queue, _cells())
        (row,) = queue.next_open(limit=1)
        queue.try_claim(row.cell_id, "w1", now=1.0)
        queue.write_back(
            row.cell_id, "w1", DONE, now=2.0,
            result_json='{"result": {}}', steps=9, elapsed=0.5,
        )
        done = queue.get(row.cell_id)
        assert done.status == DONE
        assert done.steps == 9
        assert done.result_payload() == {"result": {}}

    def test_write_back_without_a_claim_is_lost(self, queue):
        enqueue_cells(queue, _cells())
        (row,) = queue.next_open(limit=1)
        with pytest.raises(CellClaimLost):
            queue.write_back(row.cell_id, "w1", DONE, now=2.0)

    def test_stolen_claim_cannot_overwrite_the_thief(self, queue):
        enqueue_cells(queue, _cells())
        (row,) = queue.next_open(limit=1)
        queue.try_claim(row.cell_id, "w1", now=1.0)
        # w1 goes stale; a reset reopens the cell and w2 finishes it.
        queue.reset(stale_before=5.0)
        queue.try_claim(row.cell_id, "w2", now=6.0)
        queue.write_back(row.cell_id, "w2", DONE, now=7.0, result_json="{}")
        with pytest.raises(CellClaimLost):
            queue.write_back(row.cell_id, "w1", DONE, now=8.0)
        assert queue.get(row.cell_id).owner == "w2"

    def test_write_back_only_targets_terminal_states(self, queue):
        enqueue_cells(queue, _cells())
        (row,) = queue.next_open(limit=1)
        queue.try_claim(row.cell_id, "w1", now=1.0)
        with pytest.raises(QueueError):
            queue.write_back(row.cell_id, "w1", OPEN, now=2.0)


class TestReset:
    def test_stale_reset_reopens_only_expired_heartbeats(self, queue):
        cells = _cells()
        enqueue_cells(queue, cells)
        first, second = queue.next_open(limit=2)
        queue.try_claim(first.cell_id, "dead", now=1.0)
        queue.try_claim(second.cell_id, "live", now=1.0)
        queue.renew_heartbeat(second.cell_id, "live", now=50.0)
        reopened = queue.reset(stale_before=40.0)
        assert reopened == [first.cell_id]
        assert queue.get(first.cell_id).status == OPEN
        assert queue.get(first.cell_id).owner is None
        assert queue.get(second.cell_id).status == CLAIMED

    def test_failed_reset_clears_the_error(self, queue):
        enqueue_cells(queue, _cells())
        (row,) = queue.next_open(limit=1)
        queue.try_claim(row.cell_id, "w1", now=1.0)
        queue.write_back(row.cell_id, "w1", FAILED, now=2.0, error="boom")
        assert queue.reset(failed=True) == [row.cell_id]
        reopened = queue.get(row.cell_id)
        assert reopened.status == OPEN
        assert reopened.error is None
        assert reopened.result_json is None

    def test_exact_cell_reset_reopens_done_rows(self, queue):
        enqueue_cells(queue, _cells())
        (row,) = queue.next_open(limit=1)
        queue.try_claim(row.cell_id, "w1", now=1.0)
        queue.write_back(row.cell_id, "w1", DONE, now=2.0, result_json="{}")
        assert queue.reset(cell_ids=[row.cell_id]) == [row.cell_id]
        assert queue.get(row.cell_id).status == OPEN


class TestStatus:
    def test_counts_and_staleness(self, queue):
        cells = _cells()
        enqueue_cells(queue, cells)
        first, second = queue.next_open(limit=2)
        queue.try_claim(first.cell_id, "w1", now=1.0)
        queue.try_claim(second.cell_id, "w2", now=1.0)
        queue.write_back(second.cell_id, "w2", DONE, now=2.0, result_json="{}")
        status = queue.status(now=100.0, ttl=30.0)
        assert status.counts[OPEN] == len(cells) - 2
        assert status.counts[CLAIMED] == 1
        assert status.counts[DONE] == 1
        assert status.stale == 1  # w1 never renewed
        assert status.experiments == ["TH1"]
        assert status.total == len(cells)
        assert not queue.drained()

    def test_summary_line_shape(self, queue):
        enqueue_cells(queue, _cells())
        line = queue.status(now=0.0, ttl=30.0).summary()
        assert line.startswith("queue: cells=5 open=5")
        assert "experiments=TH1" in line
