"""The exporter: four formats, escaping, queue-level merge, CLI flags."""

import pytest

from repro.errors import NoMergeableResults, QueueError
from repro.exec.grid import expand_experiment
from repro.exec.queue import (
    QueueWorker,
    SqliteQueue,
    enqueue_cells,
    export_queue,
    merged_queue_results,
    render_csv,
    render_export,
    render_latex,
    render_markdown,
    to_dataframe,
)
from repro.experiments import ExperimentResult, run_experiment

SWEEP = {"k": 3, "f": 1}


@pytest.fixture(scope="module")
def result():
    return run_experiment("TH1", **SWEEP)


@pytest.fixture
def drained(tmp_path):
    backend = SqliteQueue(tmp_path / "q.db")
    enqueue_cells(backend, expand_experiment("TH1", SWEEP))
    QueueWorker(backend, worker_id="w1").run()
    yield backend
    backend.close()


class TestFormats:
    def test_table_is_byte_identical_to_render(self, result):
        assert render_export(result, "table") == result.render()

    def test_csv_is_headers_plus_rows(self, result):
        lines = render_csv(result).splitlines()
        assert lines[0] == ",".join(str(h) for h in result.headers)
        assert len(lines) == 1 + len(result.rows)
        assert lines[1].split(",")[0] == str(result.rows[0][0])

    def test_markdown_pipe_table(self, result):
        text = render_markdown(result)
        lines = text.splitlines()
        assert lines[0] == f"**{result.title}**"
        assert lines[2].startswith("| ")
        assert set(lines[3].replace("|", "").split()) == {"---"}
        # header + separator + one line per data row
        assert len([li for li in lines if li.startswith("| ")]) == 2 + len(
            result.rows
        )
        assert lines[-1].count("|") == len(result.headers) + 1

    def test_markdown_escapes_pipes(self):
        tricky = ExperimentResult("E", "t", ["a|b"], [["x|y"]])
        text = render_markdown(tricky)
        assert "a\\|b" in text and "x\\|y" in text

    def test_latex_tabular(self, result):
        text = render_latex(result)
        assert text.splitlines()[0] == f"% {result.title}"
        assert "\\begin{tabular}{" + "l" * len(result.headers) + "}" in text
        assert text.rstrip().endswith("\\end{tabular}") or "%" in text
        assert text.count("\\\\") == 1 + len(result.rows)

    def test_latex_escapes_specials(self):
        tricky = ExperimentResult("E", "t", ["a_b"], [["50%", "x&y"]])
        text = render_latex(tricky)
        assert r"a\_b" in text and r"50\%" in text and r"x\&y" in text

    def test_unknown_format_is_typed(self, result):
        with pytest.raises(QueueError):
            render_export(result, "yaml")

    def test_dataframe_needs_pandas(self, result):
        try:
            import pandas  # noqa: F401
        except ImportError:
            with pytest.raises(QueueError) as info:
                to_dataframe(result)
            assert "pandas" in str(info.value)
        else:  # pragma: no cover — environment-dependent
            frame = to_dataframe(result)
            assert list(frame.columns) == [str(h) for h in result.headers]


class TestQueueExport:
    def test_drained_queue_exports_serial_table(self, drained):
        serial = run_experiment("TH1", **SWEEP)
        assert export_queue(drained) == serial.render()

    def test_undrained_queue_refuses_without_partial(self, tmp_path):
        backend = SqliteQueue(tmp_path / "open.db")
        try:
            enqueue_cells(backend, expand_experiment("TH1", SWEEP))
            with pytest.raises(QueueError):
                export_queue(backend)
        finally:
            backend.close()

    def test_partial_exports_the_done_subset(self, tmp_path):
        backend = SqliteQueue(tmp_path / "part.db")
        try:
            enqueue_cells(backend, expand_experiment("TH1", SWEEP))
            QueueWorker(backend, worker_id="w1").run(max_cells=2)
            text = export_queue(backend, partial=True)
            assert len(text.splitlines()) < len(
                run_experiment("TH1", **SWEEP).render().splitlines()
            )
        finally:
            backend.close()

    def test_partial_with_nothing_done_raises_typed(self, tmp_path):
        backend = SqliteQueue(tmp_path / "none.db")
        try:
            enqueue_cells(backend, expand_experiment("TH1", SWEEP))
            with pytest.raises(NoMergeableResults):
                export_queue(backend, partial=True)
        finally:
            backend.close()

    def test_empty_queue_raises_typed(self, tmp_path):
        backend = SqliteQueue(tmp_path / "empty.db")
        try:
            with pytest.raises(QueueError):
                export_queue(backend)
        finally:
            backend.close()

    def test_multi_experiment_queue_groups_per_experiment(self, tmp_path):
        backend = SqliteQueue(tmp_path / "multi.db")
        try:
            enqueue_cells(backend, expand_experiment("TH1", SWEEP))
            enqueue_cells(
                backend, expand_experiment("TH2", {"k_values": (1, 2)})
            )
            QueueWorker(backend, worker_id="w1").run()
            results = merged_queue_results(backend)
            assert [r.experiment_id for r in results] == ["TH1", "TH2"]
            text = export_queue(backend)
            assert "\n\n" in text
        finally:
            backend.close()


class TestCLIExportFlags:
    def test_sweep_default_export_unchanged(self, capsys):
        from repro.cli import main

        assert main(["sweep", "-k", "3", "-f", "1", "--no-cache"]) == 0
        table = capsys.readouterr().out
        assert main(
            ["sweep", "-k", "3", "-f", "1", "--no-cache",
             "--export", "table"]
        ) == 0
        assert capsys.readouterr().out == table

    def test_sweep_export_csv(self, capsys):
        from repro.cli import main

        assert main(
            ["sweep", "-k", "3", "-f", "1", "--no-cache", "--export", "csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("n,")

    def test_queue_export_matches_sweep_export(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "q.db")
        main(["queue", "create", "--db", db, "TH1",
              "--params", '{"k": 3, "f": 1}'])
        main(["queue", "work", "--db", db, "--no-cache"])
        capsys.readouterr()
        for fmt in ("table", "csv", "md", "latex"):
            assert main(["sweep", "-k", "3", "-f", "1", "--no-cache",
                         "--export", fmt]) == 0
            local = capsys.readouterr().out
            assert main(["queue", "export", "--db", db,
                         "--export", fmt]) == 0
            assert capsys.readouterr().out == local

    def test_queue_export_out_writes_a_file(self, tmp_path, capsys):
        from repro.cli import main

        db = str(tmp_path / "q.db")
        main(["queue", "create", "--db", db, "TH1",
              "--params", '{"k": 3, "f": 1}'])
        main(["queue", "work", "--db", db, "--no-cache"])
        target = tmp_path / "table.md"
        assert main(["queue", "export", "--db", db, "--export", "md",
                     "--out", str(target)]) == 0
        assert target.read_text().startswith("**")
