"""Crash survival end-to-end: SIGKILL a worker, reset, finish elsewhere.

The scenario the queue exists for: worker 1 claims a cell and dies hard
(no write-back, no cleanup — its heartbeat just stops).  After the ttl,
``repro queue reset --stale`` reopens exactly that cell, and a second
worker completes the sweep.  No cell executes twice, and the rows worker
1 *did* finish keep its name on them.

The slow experiment lives in a module written into tmp_path (workers are
separate processes; a test-local @experiment registration would not
exist in them).  Its cells append to an execution log and block until a
release file appears, so the test controls exactly when worker 1 dies.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exec.queue import CLAIMED, DONE, OPEN, SqliteQueue

EXPERIMENT_MODULE = '''\
"""Queue crash-test experiment: logs executions, blocks on a file."""

import os
import time

from repro.experiments import ExperimentResult, experiment

RUN_DIR = os.environ["QUEUE_CRASH_DIR"]


@experiment("X-SLOW", axis="i_values", axis_default=lambda kwargs: (0, 1, 2))
def slow_sweep(i_values=(0, 1, 2)):
    (i,) = i_values
    with open(os.path.join(RUN_DIR, "executions.log"), "a") as log:
        log.write(f"{i}-{os.getpid()}\\n")
    open(os.path.join(RUN_DIR, f"started-{i}"), "w").close()
    while not os.path.exists(os.path.join(RUN_DIR, "release")):
        time.sleep(0.02)
    return ExperimentResult("X-SLOW", "slow", ["i"], [[i]])
'''


def _repro(args, run_dir, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(run_dir), "src", env.get("PYTHONPATH", "")]
    )
    env["QUEUE_CRASH_DIR"] = str(run_dir)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        **kwargs,
    )


def _wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {message}")


def test_sigkilled_worker_cell_is_reset_and_finished_once(tmp_path):
    (tmp_path / "queue_crash_experiment.py").write_text(EXPERIMENT_MODULE)
    db = str(tmp_path / "crash.db")
    common = ["--db", db, "--import-module", "queue_crash_experiment"]

    create = _repro(["queue", "create", *common, "X-SLOW"], tmp_path)
    out, _ = create.communicate(timeout=60)
    assert create.returncode == 0, out
    assert "enqueued 3 new cell(s)" in out

    # Worker 1 claims the first cell (workers claim one at a time) and
    # blocks inside it; SIGKILL it mid-execution.
    worker1 = _repro(
        ["queue", "work", *common, "--worker-id", "w1", "--no-cache",
         "--ttl", "0.5"],
        tmp_path,
    )
    try:
        _wait_for(
            lambda: (tmp_path / "started-0").exists(),
            message="worker 1 to start cell 0",
        )
        os.kill(worker1.pid, signal.SIGKILL)
        worker1.wait(timeout=30)
    finally:
        if worker1.poll() is None:  # pragma: no cover — kill failed
            worker1.kill()
            worker1.wait()

    backend = SqliteQueue(db)
    try:
        stuck = [row for row in backend.rows() if row.status == CLAIMED]
        assert len(stuck) == 1
        assert stuck[0].owner == "w1"
        dead_cell = stuck[0].cell_id
    finally:
        backend.close()

    # The heartbeat stopped with the process; after the ttl the claim is
    # stale and reset reopens exactly that cell.
    time.sleep(0.6)
    reset = _repro(
        ["queue", "reset", "--db", db, "--stale", "--ttl", "0.5"], tmp_path
    )
    out, _ = reset.communicate(timeout=60)
    assert reset.returncode == 0, out
    assert "reopened 1 cell(s)" in out
    assert dead_cell in out

    backend = SqliteQueue(db)
    try:
        assert backend.get(dead_cell).status == OPEN
    finally:
        backend.close()

    # Unblock executions and let a second worker drain the queue.
    (tmp_path / "release").write_text("go")
    worker2 = _repro(
        ["queue", "work", *common, "--worker-id", "w2", "--no-cache",
         "--ttl", "5"],
        tmp_path,
    )
    out, _ = worker2.communicate(timeout=120)
    assert worker2.returncode == 0, out

    backend = SqliteQueue(db)
    try:
        rows = backend.rows()
        assert [row.status for row in rows] == [DONE] * 3
        assert all(row.owner == "w2" for row in rows)
        by_id = {row.cell_id: row for row in rows}
        # The SIGKILLed cell carries both claims; the others only w2's.
        assert by_id[dead_cell].attempts == 2
        assert all(
            row.attempts == 1
            for row in rows
            if row.cell_id != dead_cell
        )
    finally:
        backend.close()

    # The execution log is ground truth: the killed attempt logged cell
    # 0 once before dying (it never finished), w2 logged every cell
    # exactly once — nothing ran twice *to completion*, and cells 1 and
    # 2 never ran twice at all.
    log = (tmp_path / "executions.log").read_text().splitlines()
    cells_logged = [line.split("-")[0] for line in log]
    assert sorted(cells_logged) == ["0", "0", "1", "2"]
    pids = {line.split("-")[1] for line in log if line.startswith("0-")}
    assert len(pids) == 2  # the dead attempt and w2's retry
