"""Tests for the base-object atomicity self-audit."""

import pytest

from repro.analysis.baseobject_audit import (
    assert_base_objects_atomic,
    audit_base_objects,
    object_projection,
    spec_for,
)
from repro.consistency.specs import CASSpec, MaxRegisterSpec, RegisterSpec
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import SingleCASMaxRegister
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.ids import ClientId, ObjectId
from repro.sim.objects import AtomicRegister, CASObject, MaxRegister
from repro.sim.scheduling import RandomScheduler


class TestSpecSelection:
    def test_specs_by_type(self):
        assert isinstance(spec_for(AtomicRegister(ObjectId(0))), RegisterSpec)
        assert isinstance(
            spec_for(MaxRegister(ObjectId(0), 0)), MaxRegisterSpec
        )
        assert isinstance(spec_for(CASObject(ObjectId(0), 0)), CASSpec)

    def test_unknown_type_rejected(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            spec_for(Weird())


class TestProjection:
    def test_projection_shape(self):
        emu = ABDEmulation(n=3, f=1, scheduler=RandomScheduler(0))
        client = emu.add_client()
        client.enqueue("write", "x")
        assert emu.system.run_to_quiescence().satisfied
        projection = object_projection(emu.kernel, ObjectId(0))
        assert projection, "server 0 saw no operations?"
        for record in projection:
            assert record.invoke_time < (record.return_time or 10**9)
            assert record.name in {"read_max", "write_max"}


class TestAudit:
    def test_abd_run_base_objects_atomic(self):
        emu = ABDEmulation(n=3, f=1, scheduler=RandomScheduler(1))
        clients = [emu.add_client() for _ in range(2)]
        for index, client in enumerate(clients):
            client.enqueue("write", f"v{index}")
            client.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert_base_objects_atomic(emu.kernel, max_ops_per_object=None)

    def test_ws_register_run_base_objects_atomic(self):
        emu = WSRegisterEmulation(k=1, n=3, f=1, scheduler=RandomScheduler(2))
        writer = emu.add_writer(0)
        reader = emu.add_reader()
        writer.enqueue("write", "a")
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert_base_objects_atomic(emu.kernel, max_ops_per_object=None)

    def test_cas_run_base_objects_atomic(self):
        mreg = SingleCASMaxRegister(initial_value=0, scheduler=RandomScheduler(3))
        clients = [mreg.add_client() for _ in range(2)]
        clients[0].enqueue("write_max", 5)
        clients[1].enqueue("write_max", 8)
        clients[0].enqueue("read_max")
        assert mreg.system.run_to_quiescence().satisfied
        assert_base_objects_atomic(mreg.kernel, max_ops_per_object=None)

    def test_size_cap_skips_large_projections(self):
        emu = ABDEmulation(n=3, f=1, scheduler=RandomScheduler(4))
        client = emu.add_client()
        for index in range(5):
            client.enqueue("write", index)
        assert emu.system.run_to_quiescence().satisfied
        verdicts = audit_base_objects(emu.kernel, max_ops_per_object=1)
        assert all(verdicts.values())  # skipped, reported as unchecked-OK

    def test_detects_corrupted_projection(self):
        """Tamper with a recorded result: the audit must notice."""
        emu = ABDEmulation(n=3, f=1, scheduler=RandomScheduler(5))
        client = emu.add_client()
        client.enqueue("write", "x")
        client.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        # Corrupt one completed read_max's result.
        from repro.sim.objects import OpKind
        from repro.sim.values import TSVal

        for op in emu.kernel.ops.values():
            if op.kind is OpKind.READ_MAX and op.respond_time is not None:
                op.result = TSVal(999, 999, "corrupted")
                break
        verdicts = audit_base_objects(emu.kernel, max_ops_per_object=None)
        assert not all(verdicts.values())
