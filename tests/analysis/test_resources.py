"""Tests for resource / contention / step meters."""

from tests.conftest import ToyProtocol

from repro.analysis.resources import (
    PointContentionMeter,
    ResourceMeter,
    StepMeter,
)
from repro.sim.ids import ClientId, ObjectId
from repro.sim.scheduling import RandomScheduler
from repro.sim.system import build_system


def _system(n_objects=3, seed=0):
    placements = [(0, "register", None) for _ in range(n_objects)]
    return build_system(1, placements, scheduler=RandomScheduler(seed))


class TestResourceMeter:
    def test_counts_distinct_objects_used(self):
        system = _system(3)
        meter = ResourceMeter(system.object_map)
        system.kernel.add_listener(meter)
        c0 = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        c1 = system.add_client(ClientId(1), ToyProtocol(ObjectId(1)))
        c0.enqueue("write", 1)
        c0.enqueue("write", 2)  # same object: still one
        c1.enqueue("write", 3)
        system.run_to_quiescence()
        assert meter.resource_consumption == 2

    def test_covered_now_tracks_pending_mutators(self):
        system = _system(1)
        meter = ResourceMeter(system.object_map)
        system.kernel.add_listener(meter)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        system.kernel.force_client_step(ClientId(0))
        assert meter.covered_now == 1
        (op_id,) = list(system.kernel.pending)
        system.kernel.force_respond(op_id)
        assert meter.covered_now == 0
        assert meter.max_covered == 1

    def test_used_per_server(self):
        system = build_system(
            2,
            [(0, "register", None), (1, "register", None)],
            scheduler=RandomScheduler(0),
        )
        meter = ResourceMeter(system.object_map)
        system.kernel.add_listener(meter)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(1)))
        client.enqueue("write", 1)
        system.run_to_quiescence()
        profile = meter.used_per_server()
        assert sum(profile.values()) == 1


class TestPointContentionMeter:
    def test_sequential_ops_contention_one(self):
        system = _system(1)
        meter = PointContentionMeter()
        system.kernel.add_listener(meter)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        for i in range(3):
            client.enqueue("write", i)
        system.run_to_quiescence()
        assert meter.run_point_contention == 1

    def test_concurrent_ops_counted(self):
        system = _system(2)
        meter = PointContentionMeter()
        system.kernel.add_listener(meter)
        a = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        b = system.add_client(ClientId(1), ToyProtocol(ObjectId(1)))
        a.enqueue("write", 1)
        b.enqueue("write", 2)
        system.run_to_quiescence()
        assert meter.run_point_contention == 2


class TestStepMeter:
    def test_triggers_attributed_to_ops(self):
        system = _system(1)
        meter = StepMeter()
        system.kernel.add_listener(meter)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        client.enqueue("read")
        system.run_to_quiescence()
        assert meter.triggers_per_op == {0: 1, 1: 1}

    def test_durations_positive(self):
        system = _system(1)
        meter = StepMeter()
        system.kernel.add_listener(meter)
        client = system.add_client(ClientId(0), ToyProtocol(ObjectId(0)))
        client.enqueue("write", 1)
        system.run_to_quiescence()
        assert meter.mean_duration() > 0

    def test_empty_meters(self):
        meter = StepMeter()
        assert meter.mean_triggers() == 0.0
        assert meter.mean_duration() == 0.0
