"""Tests for ASCII table rendering."""

from repro.analysis.tables import render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["a", "bb"], [[1, 2], [33, 4]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "-+-" in lines[2]
        assert len(lines) == 5

    def test_column_alignment(self):
        text = render_table(["col"], [["x"], ["longer"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_no_title(self):
        text = render_table(["h"], [["v"]])
        assert not text.startswith("\n")
        assert text.splitlines()[0].strip() == "h"
