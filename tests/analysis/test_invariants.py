"""Tests for the online invariant monitors."""

import pytest

from repro.analysis.invariants import (
    InvariantViolation,
    MonotoneTimestampInvariant,
    QuorumResponseInvariant,
    WriterCoverInvariant,
)
from repro.core.ablation import NoCoverAvoidanceEmulation, ScriptedWriteBlocker
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler, RoundRobinScheduler


class TestWriterCoverInvariant:
    def test_holds_on_algorithm2(self):
        emu = WSRegisterEmulation(k=2, n=5, f=2, scheduler=RandomScheduler(1))
        monitor = WriterCoverInvariant(f=2)
        emu.kernel.add_listener(monitor)
        writers = [emu.add_writer(i) for i in range(2)]
        for index in range(4):
            writers[index % 2].enqueue("write", f"v{index}")
            assert emu.system.run_to_quiescence().satisfied
        assert monitor.checks > 0

    def test_trips_on_cover_ablation(self):
        """The no-avoidance client accumulates > f pending writes when the
        environment withholds responds — Observation 3 breaks."""
        env = ScriptedWriteBlocker()
        emu = NoCoverAvoidanceEmulation(
            k=1, n=3, f=1, scheduler=RoundRobinScheduler(), environment=env
        )
        monitor = WriterCoverInvariant(f=1)
        emu.kernel.add_listener(monitor)
        writer = emu.add_writer(0)
        b0, b1, b2 = emu.layout.registers_for_writer(0)
        env.block(b2)
        writer.enqueue("write", "v1")
        emu.kernel.run(
            max_steps=10_000,
            until=lambda k: writer.idle and not writer.program,
        )
        writer.enqueue("write", "v2")
        with pytest.raises(InvariantViolation):
            # After W2 returns, the writer covers b2 twice: two pending
            # writes on one register still count as covering ops > f...
            # it also ends with 2 pending ops total > f = 1.
            emu.kernel.run(
                max_steps=10_000,
                until=lambda k: writer.idle and not writer.program,
            )


class TestMonotoneTimestampInvariant:
    def test_holds_on_algorithm2(self):
        emu = WSRegisterEmulation(k=2, n=5, f=2, scheduler=RandomScheduler(2))
        monitor = MonotoneTimestampInvariant()
        emu.kernel.add_listener(monitor)
        writers = [emu.add_writer(i) for i in range(2)]
        for index in range(4):
            writers[index % 2].enqueue("write", f"v{index}")
            assert emu.system.run_to_quiescence().satisfied

    def test_trips_on_manual_violation(self):
        from repro.sim.events import InvokeEvent, TriggerEvent
        from repro.sim.ids import ClientId, ObjectId, OpId
        from repro.sim.objects import LowLevelOp, OpKind
        from repro.sim.values import TSVal

        monitor = MonotoneTimestampInvariant()
        monitor.on_invoke(InvokeEvent(1, ClientId(0), 0, "write", ("a",)))
        op = LowLevelOp(
            op_id=OpId(0),
            client_id=ClientId(0),
            object_id=ObjectId(0),
            kind=OpKind.WRITE,
            args=(TSVal(3, 0, "a"),),
            trigger_time=2,
            highlevel_seq=0,
        )
        monitor.on_trigger(TriggerEvent(2, op))
        from repro.sim.events import ReturnEvent

        monitor.on_return(ReturnEvent(3, ClientId(0), 0, "write", "ack"))
        # Next write reuses a smaller timestamp: must trip.
        monitor.on_invoke(InvokeEvent(4, ClientId(1), 1, "write", ("b",)))
        bad = LowLevelOp(
            op_id=OpId(1),
            client_id=ClientId(1),
            object_id=ObjectId(0),
            kind=OpKind.WRITE,
            args=(TSVal(2, 1, "b"),),
            trigger_time=5,
            highlevel_seq=1,
        )
        with pytest.raises(InvariantViolation):
            monitor.on_trigger(TriggerEvent(5, bad))


class TestQuorumResponseInvariant:
    def test_holds_on_algorithm2(self):
        emu = WSRegisterEmulation(k=1, n=5, f=2, scheduler=RandomScheduler(3))
        monitor = QuorumResponseInvariant(emu.object_map, max_servers=5)
        emu.kernel.add_listener(monitor)
        writer = emu.add_writer(0)
        writer.enqueue("write", "x")
        assert emu.system.run_to_quiescence().satisfied

    def test_trips_when_budget_too_small(self):
        emu = WSRegisterEmulation(k=1, n=5, f=2, scheduler=RandomScheduler(4))
        monitor = QuorumResponseInvariant(emu.object_map, max_servers=1)
        emu.kernel.add_listener(monitor)
        writer = emu.add_writer(0)
        writer.enqueue("write", "x")
        with pytest.raises(InvariantViolation):
            emu.system.run_to_quiescence()
