"""Property tests: quorum properties hold on random small layouts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layout import RegisterLayout
from repro.core.quorums import verify_quorum_properties


@st.composite
def small_layouts(draw):
    f = draw(st.integers(min_value=1, max_value=2))
    k = draw(st.integers(min_value=1, max_value=4))
    n = 2 * f + 1 + draw(st.integers(min_value=0, max_value=2))
    return RegisterLayout(k, n, f)


@given(small_layouts())
@settings(max_examples=40, deadline=None)
def test_quorum_properties_exhaustively(layout):
    stats = verify_quorum_properties(layout)
    for entry in stats:
        assert entry.min_read_cover >= entry.set_size - layout.f
        assert entry.min_write_read_intersection >= 1
        assert entry.writers_supported >= entry.writers_assigned
