"""Property test: fork + record/replay compose.

Fork a run at an idle configuration, drive branch A with a recording
scheduler, then replay its script on branch B: the two branches must end
in identical configurations (histories, object values, op counts).  This
pins down that forks are complete copies and that replay is exact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ws_register import WSRegisterEmulation
from repro.sim.forking import fork_many
from repro.sim.ids import ClientId
from repro.sim.replay import RecordingScheduler, ReplayScheduler
from repro.sim.scheduling import RandomScheduler


def _fingerprint(kernel):
    history = [
        listener for listener in kernel.listeners if hasattr(listener, "reads")
    ][0]
    ops = [
        (op.seq, op.name, op.invoke_time, op.return_time, repr(op.result))
        for op in history.all_ops()
    ]
    values = [repr(obj.value) for obj in kernel.object_map.objects]
    return ops, values, len(kernel.ops), kernel.time


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_fork_then_replay_matches(prefix_seed, branch_seed):
    emu = WSRegisterEmulation(
        k=2, n=5, f=2, scheduler=RandomScheduler(prefix_seed)
    )
    writer0 = emu.add_writer(0)
    writer1 = emu.add_writer(1)
    reader = emu.add_reader()
    writer0.enqueue("write", "prefix")
    assert emu.system.run_to_quiescence(max_steps=500_000).satisfied

    branch_a, branch_b = fork_many(emu.kernel, 2)

    # Drive branch A under a fresh recorded random schedule.
    recorder = RecordingScheduler(RandomScheduler(branch_seed))
    branch_a.scheduler = recorder
    branch_a.clients[writer1.client_id].enqueue("write", "branch")
    branch_a.clients[reader.client_id].enqueue("read")
    result = branch_a.run(max_steps=500_000)
    assert result.reason in ("quiescent", "max_steps")

    # Replay the exact script on branch B.
    branch_b.scheduler = ReplayScheduler(recorder.script)
    branch_b.clients[writer1.client_id].enqueue("write", "branch")
    branch_b.clients[reader.client_id].enqueue("read")
    branch_b.run(max_steps=len(recorder.script))

    assert _fingerprint(branch_a) == _fingerprint(branch_b)
