"""Property tests for capacitated layouts (Theorem 7's constructive side)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounds
from repro.core.layout_opt import capacitated_layout


@st.composite
def plan_params(draw):
    k = draw(st.integers(min_value=1, max_value=10))
    f = draw(st.integers(min_value=1, max_value=3))
    capacity = draw(st.integers(min_value=1, max_value=3 * k))
    return k, f, capacity


@given(plan_params())
@settings(max_examples=150, deadline=None)
def test_plan_respects_all_constraints(params):
    k, f, capacity = params
    plan = capacitated_layout(k, f, capacity)
    # Capacity respected, floors respected, layout valid.
    assert plan.max_per_server <= capacity
    assert plan.servers >= bounds.min_servers(f)
    assert plan.servers >= plan.theorem7_floor
    plan.layout.validate()
    assert plan.total_registers == bounds.register_upper_bound(
        k, plan.servers, f
    )


@given(plan_params())
@settings(max_examples=100, deadline=None)
def test_plan_is_minimal_for_this_layout_family(params):
    """One fewer server either violates the capacity or the 2f+1 floor —
    the search really returns the first feasible n."""
    k, f, capacity = params
    plan = capacitated_layout(k, f, capacity)
    n_smaller = plan.servers - 1
    if n_smaller < bounds.min_servers(f) or n_smaller < plan.theorem7_floor:
        return  # already at a hard floor
    from repro.core.layout import RegisterLayout

    smaller = RegisterLayout(k, n_smaller, f)
    assert max(smaller.storage_profile().values()) > capacity


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=100, deadline=None)
def test_capacity_one_reaches_one_per_server(k, f):
    plan = capacitated_layout(k, f, 1)
    assert plan.max_per_server == 1
    assert plan.servers >= plan.total_registers
