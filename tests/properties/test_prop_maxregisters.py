"""Model-based property tests for every max-register implementation.

All three constructions — the k-register collect max-register, the
single-CAS Algorithm 1, and the quorum-replicated FTMaxRegister — must
agree with the trivial reference model (a running maximum) on random
sequential operation scripts, under random seeds and (for the replicated
one) random in-budget crashes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cas_maxreg import SingleCASMaxRegister
from repro.core.collect_maxreg import CollectMaxRegister
from repro.core.ft_maxreg import FTMaxRegister
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


@st.composite
def scripts(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("write_max"),
                    st.integers(min_value=1, max_value=50),
                ),
                st.tuples(st.just("read_max"), st.none()),
            ),
            min_size=1,
            max_size=10,
        )
    )
    return seed, ops


def _drive(register, clients, ops, model_initial=0):
    """Run ops sequentially round-robin over clients; compare to model."""
    model = model_initial
    for index, (name, arg) in enumerate(ops):
        client = clients[index % len(clients)]
        if name == "write_max":
            client.enqueue("write_max", arg)
            assert register.system.run_to_quiescence(
                max_steps=500_000
            ).satisfied
            model = max(model, arg)
        else:
            client.enqueue("read_max")
            assert register.system.run_to_quiescence(
                max_steps=500_000
            ).satisfied
            observed = register.history.all_ops()[-1].result
            assert observed == model, (name, index, observed, model)
    return model


@given(scripts())
@settings(max_examples=25, deadline=None)
def test_collect_maxregister_matches_model(script):
    seed, ops = script
    register = CollectMaxRegister(
        k=2, initial_value=0, scheduler=RandomScheduler(seed)
    )
    clients = [register.add_writer(0), register.add_writer(1)]
    readers = [register.add_reader()]
    # writers handle write_max, readers handle read_max
    model = 0
    for index, (name, arg) in enumerate(ops):
        if name == "write_max":
            clients[index % 2].enqueue("write_max", arg)
            model = max(model, arg)
        else:
            readers[0].enqueue("read_max")
        assert register.system.run_to_quiescence(max_steps=500_000).satisfied
        if name == "read_max":
            assert register.history.all_ops()[-1].result == model


@given(scripts())
@settings(max_examples=25, deadline=None)
def test_single_cas_maxregister_matches_model(script):
    seed, ops = script
    register = SingleCASMaxRegister(
        initial_value=0, scheduler=RandomScheduler(seed)
    )
    clients = [register.add_client(), register.add_client()]
    _drive(register, clients, ops)


@given(scripts(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_ft_maxregister_matches_model(script, crash):
    seed, ops = script
    register = FTMaxRegister(n=5, f=2, scheduler=RandomScheduler(seed))
    if crash:
        rng = random.Random(seed)
        for server_index in rng.sample(range(5), 2):
            register.kernel.crash_server(ServerId(server_index))
    clients = [register.add_client(), register.add_client()]
    _drive(register, clients, ops)
