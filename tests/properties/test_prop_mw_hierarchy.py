"""Property tests: the consistency-condition hierarchy.

On random register histories (concurrent writes allowed):

    atomic  =>  MW-Strong  =>  MW-Weak,

and on write-sequential histories MW-Weak coincides with WS-Regularity.
These relations cross-validate four independently implemented checkers
against each other.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.mw_regularity import (
    check_mw_regular_strong,
    check_mw_regular_weak,
)
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular
from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId


@st.composite
def histories(draw, write_sequential=False):
    n_writes = draw(st.integers(min_value=1, max_value=4))
    n_reads = draw(st.integers(min_value=1, max_value=3))
    history = History()
    seq = 0
    time = 1
    values = []
    for w in range(n_writes):
        if write_sequential:
            invoke = time
            ret = invoke + draw(st.integers(min_value=1, max_value=3))
            time = ret + draw(st.integers(min_value=1, max_value=3))
        else:
            invoke = draw(st.integers(min_value=1, max_value=20))
            ret = invoke + draw(st.integers(min_value=1, max_value=10))
        value = f"v{w}"
        values.append(value)
        history.ops[seq] = HistoryOp(
            seq=seq,
            client_id=ClientId(w),
            name="write",
            args=(value,),
            invoke_time=invoke,
            return_time=ret,
            result="ack",
        )
        seq += 1
    for r in range(n_reads):
        invoke = draw(st.integers(min_value=1, max_value=35))
        ret = invoke + draw(st.integers(min_value=1, max_value=8))
        result = draw(st.sampled_from(values + ["v0"]))
        history.ops[seq] = HistoryOp(
            seq=seq,
            client_id=ClientId(100 + r),
            name="read",
            args=(),
            invoke_time=invoke,
            return_time=ret,
            result=result,
        )
        seq += 1
    return history


@given(histories())
@settings(max_examples=120, deadline=None)
def test_atomic_implies_mw_strong(history):
    if is_register_history_atomic(history, initial_value="v0"):
        assert check_mw_regular_strong(history, initial_value="v0") == []


@given(histories())
@settings(max_examples=120, deadline=None)
def test_mw_strong_implies_mw_weak(history):
    if check_mw_regular_strong(history, initial_value="v0") == []:
        assert check_mw_regular_weak(history, initial_value="v0") == []


@given(histories(write_sequential=True))
@settings(max_examples=120, deadline=None)
def test_mw_weak_equals_ws_regular_when_write_sequential(history):
    assert history.is_write_sequential()
    weak_ok = check_mw_regular_weak(history, initial_value="v0") == []
    ws_ok = check_ws_regular(history, initial_value="v0") == []
    assert weak_ok == ws_ok
