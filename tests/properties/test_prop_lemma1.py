"""Property tests: the Lemma 1 construction succeeds for random
parameters and random choices of the protected set F.

The lemma quantifies over *every* F of size f+1; here hypothesis picks F
and the dimensions, and the claims must hold each time.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.ids import ServerId


@st.composite
def lemma1_params(draw):
    f = draw(st.integers(min_value=1, max_value=2))
    k = draw(st.integers(min_value=1, max_value=3))
    n = 2 * f + 1 + draw(st.integers(min_value=0, max_value=3))
    f_seed = draw(st.integers(min_value=0, max_value=1_000))
    return k, n, f, f_seed


@given(lemma1_params())
@settings(max_examples=12, deadline=None)
def test_lemma1_claims_for_random_F(params):
    k, n, f, f_seed = params
    rng = random.Random(f_seed)
    F = {ServerId(i) for i in rng.sample(range(n), f + 1)}

    def factory(scheduler):
        return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

    runner = Lemma1Runner(factory, k=k, f=f, F=F)
    reports = runner.run()
    runner.assert_all_claims()
    # Covering grows by at least f per write and ends >= kf.
    growth = runner.covered_growth()
    assert growth[-1] >= k * f
    assert all(b - a >= f for a, b in zip([0] + growth, growth))
