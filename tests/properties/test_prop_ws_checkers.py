"""Property tests: the fast WS checkers agree with the exact search.

Random write-sequential histories are generated with arbitrary read
placements and read results drawn from written values, the initial value,
or garbage; the fast WS-Regular window check must agree exactly with the
general linearizability search over ``writes + {rd}`` (the literal
Appendix A.3 definition).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.linearizability import is_linearizable
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.specs import RegisterSpec
from repro.consistency.ws import (
    check_ws_regular,
    check_ws_safe,
    valid_read_values_ws_regular,
)
from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId


@st.composite
def ws_histories(draw):
    """A random write-sequential history with 1-4 writes and 1-3 reads."""
    n_writes = draw(st.integers(min_value=1, max_value=4))
    n_reads = draw(st.integers(min_value=1, max_value=3))
    history = History()
    time = 1
    seq = 0
    write_values = []
    for w in range(n_writes):
        duration = draw(st.integers(min_value=1, max_value=4))
        value = f"v{w}"
        write_values.append(value)
        history.ops[seq] = HistoryOp(
            seq=seq,
            client_id=ClientId(w),
            name="write",
            args=(value,),
            invoke_time=time,
            return_time=time + duration,
            result="ack",
        )
        time += duration + draw(st.integers(min_value=1, max_value=3))
        seq += 1
    horizon = time + 5
    for r in range(n_reads):
        invoke = draw(st.integers(min_value=1, max_value=horizon))
        ret = invoke + draw(st.integers(min_value=1, max_value=6))
        result = draw(
            st.sampled_from(write_values + ["v0", "garbage"])
        )
        history.ops[seq] = HistoryOp(
            seq=seq,
            client_id=ClientId(100 + r),
            name="read",
            args=(),
            invoke_time=invoke,
            return_time=ret,
            result=result,
        )
        seq += 1
    return history


@given(ws_histories())
@settings(max_examples=150, deadline=None)
def test_fast_ws_regular_agrees_with_search(history):
    assert history.is_write_sequential()
    # cross_check=True asserts fast == slow internally per read.
    check_ws_regular(history, initial_value="v0", cross_check=True)


@given(ws_histories())
@settings(max_examples=150, deadline=None)
def test_ws_safe_implies_ws_regular(history):
    """Any WS-Safe violation on an isolated read is also disallowed by
    WS-Regularity (safety is weaker: fewer reads constrained, but where
    both constrain, the safe value set is a subset)."""
    safe_violations = {
        v.read.seq for v in check_ws_safe(history, initial_value="v0")
    }
    regular_violations = {
        v.read.seq for v in check_ws_regular(history, initial_value="v0")
    }
    assert safe_violations <= regular_violations


@given(ws_histories())
@settings(max_examples=150, deadline=None)
def test_atomicity_implies_ws_regularity(history):
    """Linearizable histories satisfy WS-Regularity."""
    if is_register_history_atomic(history, initial_value="v0"):
        assert check_ws_regular(history, initial_value="v0") == []


@given(ws_histories())
@settings(max_examples=150, deadline=None)
def test_fast_atomicity_agrees_with_search(history):
    fast = is_register_history_atomic(history, initial_value="v0")
    slow = is_linearizable(
        list(history.all_ops()), RegisterSpec("v0")
    )
    assert fast == slow


@given(ws_histories())
@settings(max_examples=100, deadline=None)
def test_regular_window_values_accepted_by_search(history):
    """Every value the fast window allows is indeed linearizable."""
    writes = history.writes
    for read in history.reads:
        if not read.complete:
            continue
        for value in valid_read_values_ws_regular(
            history, read, initial_value="v0"
        ):
            candidate = HistoryOp(
                seq=read.seq,
                client_id=read.client_id,
                name="read",
                args=(),
                invoke_time=read.invoke_time,
                return_time=read.return_time,
                result=value,
            )
            assert is_linearizable(
                writes + [candidate], RegisterSpec("v0")
            )
