"""Property tests: incremental enabled-action state equals the oracle.

The kernel's incremental bookkeeping (``_collect_enabled``) must agree
with a from-scratch ``enabled_actions()`` rebuild — element for element,
in order — in *every* reachable configuration: after client steps,
responds, enqueues, crashes, and environment stalls.
``Kernel.check_incremental`` raises on any divergence; we install it as a
step listener so every single configuration of a seeded random run is
checked, across emulation runs with chaos environments and crash
schedules drawn by hypothesis.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ws_register import WSRegisterEmulation
from repro.sim.chaos import ChaosEnvironment
from repro.sim.events import EventListener
from repro.sim.failures import CrashPlan
from repro.sim.ids import ClientId, ServerId
from repro.sim.scheduling import RandomScheduler


class _IncrementalChecker(EventListener):
    """Asserts fast-path == oracle after every kernel step."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.checked = 0

    def on_step(self, time: int) -> None:
        self.kernel.check_incremental()
        self.checked += 1


def _checked_run(seed, k, rounds, chaos, crash_step):
    emu = WSRegisterEmulation(
        k,
        2 * 1 + 1 + (k > 2),  # n: 3 servers for k<=2, 4 beyond
        1,
        scheduler=RandomScheduler(seed),
        environment=(
            ChaosEnvironment(seed=seed, veto_probability=0.5, max_delay=50)
            if chaos
            else None
        ),
    )
    checker = _IncrementalChecker(emu.kernel)
    emu.kernel.add_listener(checker)
    writers = [emu.add_writer(index) for index in range(k)]
    reader = emu.add_reader()
    if crash_step is not None:
        plan = (
            CrashPlan()
            .crash_server_at(crash_step, ServerId(0))
            .crash_client_at(crash_step + 7, writers[-1].client_id)
        )
        plan.install(emu.kernel)
    for index in range(rounds):
        writers[index % k].enqueue("write", index)
        reader.enqueue("read")
    live = [*writers, reader]

    def done(kernel):
        return all(c.crashed or (c.idle and not c.program) for c in live)

    emu.kernel.run(max_steps=5_000, until=done)
    assert checker.checked > 0
    emu.kernel.check_incremental()  # and in the terminal configuration
    return checker.checked


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    k=st.integers(min_value=1, max_value=3),
    rounds=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_incremental_matches_oracle_plain_runs(seed, k, rounds):
    _checked_run(seed, k, rounds, chaos=False, crash_step=None)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rounds=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=15, deadline=None)
def test_incremental_matches_oracle_under_chaos(seed, rounds):
    """Stall/on_stall cycles must keep the two views in lockstep."""
    _checked_run(seed, k=2, rounds=rounds, chaos=True, crash_step=None)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_step=st.integers(min_value=1, max_value=120),
)
@settings(max_examples=15, deadline=None)
def test_incremental_matches_oracle_across_crashes(seed, crash_step):
    """Server and client crashes must prune the incremental sets exactly."""
    _checked_run(seed, k=2, rounds=3, chaos=False, crash_step=crash_step)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    crash_step=st.integers(min_value=1, max_value=80),
)
@settings(max_examples=10, deadline=None)
def test_incremental_matches_oracle_chaos_and_crashes(seed, crash_step):
    _checked_run(seed, k=2, rounds=3, chaos=True, crash_step=crash_step)
