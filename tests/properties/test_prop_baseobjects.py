"""Property test: every run's base-object projections are linearizable.

Meta-validation of the substrate (Appendix A's atomic base objects):
random emulations, seeds and crash patterns; after the run, the low-level
history of each base object must admit a linearization under its type's
sequential specification.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.baseobject_audit import assert_base_objects_atomic
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import CASABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


@st.composite
def run_configs(draw):
    kind = draw(st.sampled_from(["abd", "cas", "ws"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_ops = draw(st.integers(min_value=1, max_value=4))
    crash = draw(st.booleans())
    return kind, seed, n_ops, crash


@given(run_configs())
@settings(max_examples=25, deadline=None)
def test_base_object_projections_linearizable(config):
    kind, seed, n_ops, crash = config
    n, f = 3, 1
    if kind == "abd":
        emu = ABDEmulation(n=n, f=f, scheduler=RandomScheduler(seed))
        actors = [emu.add_client() for _ in range(2)]
    elif kind == "cas":
        emu = CASABDEmulation(n=n, f=f, scheduler=RandomScheduler(seed))
        actors = [emu.add_client() for _ in range(2)]
    else:
        emu = WSRegisterEmulation(k=2, n=n, f=f, scheduler=RandomScheduler(seed))
        actors = [emu.add_writer(0), emu.add_writer(1)]
    if crash:
        emu.kernel.crash_server(ServerId(random.Random(seed).randrange(n)))
    for index in range(n_ops):
        actors[index % 2].enqueue("write", f"v{index}")
    assert emu.system.run_to_quiescence(max_steps=500_000).satisfied
    assert_base_objects_atomic(emu.kernel, max_ops_per_object=24)
