"""Property-based tests for the closed-form bounds."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounds

params = st.tuples(
    st.integers(min_value=1, max_value=30),  # k
    st.integers(min_value=1, max_value=6),  # f
    st.integers(min_value=0, max_value=40),  # n slack above 2f+1
)


@given(params)
@settings(max_examples=200)
def test_lower_at_most_upper(p):
    k, f, slack = p
    n = 2 * f + 1 + slack
    assert bounds.register_lower_bound(k, n, f) <= (
        bounds.register_upper_bound(k, n, f)
    )


@given(params)
@settings(max_examples=200)
def test_lower_bound_floor_kf_plus_f_plus_1(p):
    k, f, slack = p
    n = 2 * f + 1 + slack
    assert bounds.register_lower_bound(k, n, f) >= k * f + f + 1


@given(params)
@settings(max_examples=200)
def test_monotone_nondecreasing_in_k(p):
    k, f, slack = p
    n = 2 * f + 1 + slack
    assert bounds.register_lower_bound(k + 1, n, f) > (
        bounds.register_lower_bound(k, n, f) - 1
    )
    assert bounds.register_upper_bound(k + 1, n, f) >= (
        bounds.register_upper_bound(k, n, f)
    )


@given(params)
@settings(max_examples=200)
def test_monotone_nonincreasing_in_n(p):
    k, f, slack = p
    n = 2 * f + 1 + slack
    assert bounds.register_lower_bound(k, n + 1, f) <= (
        bounds.register_lower_bound(k, n, f)
    )
    assert bounds.register_upper_bound(k, n + 1, f) <= (
        bounds.register_upper_bound(k, n, f)
    )


@given(params)
@settings(max_examples=200)
def test_layout_sizes_consistent(p):
    k, f, slack = p
    n = 2 * f + 1 + slack
    sizes = bounds.layout_set_sizes(k, n, f)
    assert sum(sizes) == bounds.register_upper_bound(k, n, f)
    assert all(2 * f + 1 <= s <= n for s in sizes)
    # Each set supports its assigned writers.
    z = bounds.z_value(n, f)
    assigned = [z] * (k // z) + ([k % z] if k % z else [])
    assert len(assigned) == len(sizes)
    for size, writers in zip(sizes, assigned):
        assert bounds.writers_supported_by_set(size, f) >= writers


@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=6))
@settings(max_examples=100)
def test_coincidence_points(k, f):
    n_min = 2 * f + 1
    assert bounds.register_lower_bound(k, n_min, f) == k * (2 * f + 1)
    assert bounds.register_upper_bound(k, n_min, f) == k * (2 * f + 1)
    n_sat = bounds.saturation_n(k, f)
    assert bounds.register_lower_bound(k, n_sat, f) == k * f + f + 1
    assert bounds.register_upper_bound(k, n_sat, f) == k * f + f + 1


@given(params)
@settings(max_examples=200)
def test_theorem7_consistency(p):
    """The Theorem 7 server bound is monotone in k and anti-monotone in m."""
    k, f, slack = p
    m = 1 + slack
    assert bounds.servers_needed_bounded_storage(
        k + 1, f, m
    ) >= bounds.servers_needed_bounded_storage(k, f, m)
    assert bounds.servers_needed_bounded_storage(
        k, f, m + 1
    ) <= bounds.servers_needed_bounded_storage(k, f, m)
