"""Property tests: safety survives chaotic response delays.

Random (seed, veto probability, delay bound) chaos environments combined
with random schedulers: the emulations must stay live (operations finish)
and safe (their consistency condition holds).  This composes the two
randomness sources — scheduling order and environment vetoes — for much
wilder interleavings than either alone.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular
from repro.core.abd import ABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.chaos import ChaosEnvironment
from repro.sim.scheduling import RandomScheduler


@st.composite
def chaos_configs(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    veto = draw(st.floats(min_value=0.0, max_value=0.9))
    delay = draw(st.integers(min_value=5, max_value=120))
    return seed, veto, delay


@given(chaos_configs())
@settings(max_examples=20, deadline=None)
def test_algorithm2_ws_regular_under_chaos(config):
    seed, veto, delay = config
    emu = WSRegisterEmulation(
        k=2,
        n=5,
        f=2,
        scheduler=RandomScheduler(seed),
        environment=ChaosEnvironment(
            seed=seed, veto_probability=veto, max_delay=delay
        ),
    )
    writers = [emu.add_writer(i) for i in range(2)]
    reader = emu.add_reader()
    for index in range(2):
        writers[index].enqueue("write", f"v{index}")
        reader.enqueue("read")
        result = emu.system.run_to_quiescence(max_steps=3_000_000)
        assert result.satisfied, f"liveness lost under chaos: {result}"
    assert check_ws_regular(emu.history, cross_check=True) == []


@given(chaos_configs())
@settings(max_examples=20, deadline=None)
def test_abd_atomic_under_chaos(config):
    seed, veto, delay = config
    emu = ABDEmulation(
        n=5,
        f=2,
        scheduler=RandomScheduler(seed),
        environment=ChaosEnvironment(
            seed=seed, veto_probability=veto, max_delay=delay
        ),
    )
    writers = [emu.add_client() for _ in range(2)]
    reader = emu.add_client()
    for i, writer in enumerate(writers):
        writer.enqueue("write", f"w{i}")
    reader.enqueue("read")
    assert emu.system.run_to_quiescence(max_steps=3_000_000).satisfied
    assert is_register_history_atomic(emu.history)
