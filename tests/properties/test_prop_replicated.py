"""Property tests for the (2f+1)k replicated-max-register emulation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.ws import check_ws_regular, check_ws_safe
from repro.core import bounds
from repro.core.collect_maxreg import ReplicatedMaxRegisterEmulation
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


@st.composite
def replicated_params(draw):
    f = draw(st.integers(min_value=1, max_value=2))
    k = draw(st.integers(min_value=1, max_value=3))
    n = 2 * f + 1
    seed = draw(st.integers(min_value=0, max_value=10_000))
    crash = draw(st.booleans())
    return k, n, f, seed, crash


@given(replicated_params())
@settings(max_examples=25, deadline=None)
def test_ws_regular_with_random_crashes(params):
    k, n, f, seed, crash = params
    emu = ReplicatedMaxRegisterEmulation(
        k=k, n=n, f=f, scheduler=RandomScheduler(seed)
    )
    if crash:
        rng = random.Random(seed)
        for server in rng.sample(range(n), f):
            emu.kernel.crash_server(ServerId(server))
    writers = [emu.add_writer(i) for i in range(k)]
    reader = emu.add_reader()
    for index in range(min(k, 2)):
        writers[index].enqueue("write", f"v{index}")
        reader.enqueue("read")
        assert emu.system.run_to_quiescence(max_steps=1_000_000).satisfied
    assert check_ws_regular(emu.history, cross_check=True) == []
    assert check_ws_safe(emu.history) == []


@given(replicated_params())
@settings(max_examples=25, deadline=None)
def test_space_is_tight_at_minimum_servers(params):
    k, n, f, _seed, _crash = params
    emu = ReplicatedMaxRegisterEmulation(k=k, n=n, f=f)
    assert emu.total_registers == bounds.register_lower_bound(k, n, f)
    assert emu.total_registers == k * (2 * f + 1)
