"""Property tests: emulations satisfy their claimed consistency under
randomized schedules, parameters and workloads.

These are the paper's correctness theorems as statistical model checks:
Theorem 3 (Algorithm 2 is WS-Regular and wait-free), Theorem 4 (Algorithm
1 is atomic and wait-free), plus ABD atomicity, each over hypothesis-drawn
seeds and dimensions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.linearizability import is_linearizable
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.specs import MaxRegisterSpec
from repro.consistency.ws import check_ws_regular, check_ws_safe
from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import SingleCASMaxRegister
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler


@st.composite
def ws_params(draw):
    f = draw(st.integers(min_value=1, max_value=2))
    k = draw(st.integers(min_value=1, max_value=3))
    n = 2 * f + 1 + draw(st.integers(min_value=0, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return k, n, f, seed


@given(ws_params())
@settings(max_examples=30, deadline=None)
def test_algorithm2_ws_regular_under_random_schedules(params):
    from repro.analysis.invariants import (
        MonotoneTimestampInvariant,
        WriterCoverInvariant,
    )

    k, n, f, seed = params
    emu = WSRegisterEmulation(k=k, n=n, f=f, scheduler=RandomScheduler(seed))
    # Observation 3 and Lemma 6 are monitored online at every step.
    emu.kernel.add_listener(WriterCoverInvariant(f=f))
    emu.kernel.add_listener(MonotoneTimestampInvariant())
    writers = [emu.add_writer(i) for i in range(k)]
    reader = emu.add_reader()
    sequence = 0
    for round_index in range(2):
        for w, writer in enumerate(writers):
            writer.enqueue("write", f"w{w}-{round_index}")
            # Reads run concurrently with the write (WS-Regular territory).
            reader.enqueue("read")
            result = emu.system.run_to_quiescence(max_steps=500_000)
            assert result.satisfied, "wait-freedom violated"
            sequence += 1
    assert check_ws_regular(emu.history, cross_check=True) == []
    assert check_ws_safe(emu.history) == []


@given(ws_params())
@settings(max_examples=25, deadline=None)
def test_algorithm2_survives_f_crashes(params):
    from repro.sim.ids import ServerId

    k, n, f, seed = params
    emu = WSRegisterEmulation(k=k, n=n, f=f, scheduler=RandomScheduler(seed))
    # Crash exactly f servers chosen by the seed.
    import random

    rng = random.Random(seed)
    for server_index in rng.sample(range(n), f):
        emu.kernel.crash_server(ServerId(server_index))
    writer = emu.add_writer(0)
    reader = emu.add_reader()
    writer.enqueue("write", "value")
    assert emu.system.run_to_quiescence(max_steps=500_000).satisfied
    reader.enqueue("read")
    assert emu.system.run_to_quiescence(max_steps=500_000).satisfied
    assert emu.history.reads[0].result == "value"


@given(ws_params())
@settings(max_examples=25, deadline=None)
def test_algorithm2_write_footprint_exceeds_2f(params):
    """Lemma 4, statistically: every completed write triggered low-level
    writes on more than 2f distinct servers."""
    k, n, f, seed = params
    emu = WSRegisterEmulation(k=k, n=n, f=f, scheduler=RandomScheduler(seed))
    writers = [emu.add_writer(i) for i in range(k)]
    for index, writer in enumerate(writers):
        writer.enqueue("write", f"v{index}")
        assert emu.system.run_to_quiescence(max_steps=500_000).satisfied
    for writer in writers:
        touched = {
            emu.object_map.server_of(op.object_id)
            for op in emu.kernel.ops.values()
            if op.client_id == writer.client_id and op.is_mutator
        }
        assert len(touched) > 2 * f


@given(
    st.integers(min_value=1, max_value=2),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_abd_atomic_under_concurrency(f, seed):
    n = 2 * f + 1
    emu = ABDEmulation(n=n, f=f, scheduler=RandomScheduler(seed))
    writers = [emu.add_client() for _ in range(2)]
    readers = [emu.add_client() for _ in range(2)]
    for i, writer in enumerate(writers):
        writer.enqueue("write", f"w{i}")
    for reader in readers:
        reader.enqueue("read")
    assert emu.system.run_to_quiescence(max_steps=500_000).satisfied
    assert is_register_history_atomic(emu.history)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.lists(
        st.integers(min_value=1, max_value=9), min_size=2, max_size=5
    ),
)
@settings(max_examples=30, deadline=None)
def test_cas_maxregister_atomic(seed, values):
    mreg = SingleCASMaxRegister(initial_value=0, scheduler=RandomScheduler(seed))
    clients = [mreg.add_client() for _ in range(len(values) + 1)]
    for client, value in zip(clients, values):
        client.enqueue("write_max", value)
    clients[-1].enqueue("read_max")
    assert mreg.system.run_to_quiescence(max_steps=500_000).satisfied
    assert is_linearizable(mreg.history.all_ops(), MaxRegisterSpec(0))
    # The read (quiescent afterwards) must equal the max written value
    # once all writes completed... it ran concurrently, so it returns any
    # monotone-consistent value; at least check the final CAS state.
    final = mreg.system.object_map.object(
        __import__("repro.sim.ids", fromlist=["ObjectId"]).ObjectId(0)
    ).value
    assert final == max(values + [0])
