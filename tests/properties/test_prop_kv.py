"""Property tests: the KV store behaves like a dict under sequential ops.

Because the runner drives every operation to quiescence, the per-key
histories are sequential: ``get`` must return exactly the last ``put``
value (the sequential specification), on every substrate, under random
operation sequences, seeds and crash points (at most f crashes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kv import ReplicatedKVStore

KEYS = ["a", "b", "c"]


@st.composite
def kv_scripts(draw):
    substrate = draw(st.sampled_from(["register", "max-register", "cas"]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_ops = draw(st.integers(min_value=1, max_value=12))
    ops = []
    counter = 0
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["put", "get", "crash"]))
        key = draw(st.sampled_from(KEYS))
        if kind == "put":
            writer = draw(st.integers(min_value=0, max_value=1))
            ops.append(("put", key, f"value-{counter}", writer))
            counter += 1
        elif kind == "get":
            ops.append(("get", key, None, None))
        else:
            server = draw(st.integers(min_value=0, max_value=4))
            ops.append(("crash", None, server, None))
    return substrate, seed, ops


@given(kv_scripts())
@settings(max_examples=25, deadline=None)
def test_kv_matches_dict_model(script):
    substrate, seed, ops = script
    store = ReplicatedKVStore(
        substrate=substrate, n=5, f=2, k_writers=2, seed=seed
    )
    model = {}
    crashed = set()
    for kind, key, payload, writer in ops:
        if kind == "put":
            store.session(writer=writer).put(key, payload)
            model[key] = payload
        elif kind == "get":
            assert store.get(key) == model.get(key)
        else:
            if len(crashed | {payload}) <= 2:  # stay within f = 2
                crashed.add(payload)
                store.crash_server(payload)
    # Post-conditions: final reads agree with the model, histories clean.
    for key in model:
        assert store.get(key) == model[key]
    assert all(store.audit().values())
