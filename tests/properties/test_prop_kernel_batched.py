"""Differential property tests: ``run_batched`` IS ``run``.

``Kernel.run_batched`` amortizes per-step bookkeeping (precondition
revalidation once per batch, hoisted locals, inlined execution) but must
never change a single decision: the scheduler is still consulted once
per action over the same allowed-action list, so the chosen action
sequence — and with it the recorded history and the full kernel event
trace — must be byte-for-byte identical to ``run(incremental=True)``.

These tests fingerprint (sha256 of serialized history, sha256 of the
formatted trace) a seeded run for every batch size in ``BATCH_SIZES``
against the unbatched run of the same scenario, across the schedule
kinds that exercise every fallback of the batched loop:

* ``plain`` — the inlined fast path end to end;
* ``chaos`` — a vetoing environment: every batch falls back to the
  general (step-replicating) loop;
* ``crash`` — a mid-run server crash arriving through a step listener;
* ``lossy`` — an active transport with in-flight messages and seeded
  duplicate/reorder/delay fates (drops excluded: the run must drain).

Batch size 1 is the degenerate case (revalidation every step); 64 is
the default the benchmarks and the CLI use.
"""

import hashlib
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ws_register import WSRegisterEmulation
from repro.net import TransportConfig, chaos_faults
from repro.sim.chaos import ChaosEnvironment
from repro.sim.failures import CrashPlan
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler
from repro.sim.tracing import TraceRecorder, format_entry

BATCH_SIZES = (1, 4, 16, 64)
SCHEDULES = ("plain", "chaos", "crash", "lossy")


def _fingerprint(seed, schedule, batch_size, rounds=3):
    """(history sha, trace sha) of one seeded WSRegister scenario.

    ``batch_size=None`` runs the plain incremental loop; an int routes
    through ``run_batched`` via ``SimSystem.run_to_quiescence``.
    """
    emu = WSRegisterEmulation(2, 5, 2, scheduler=RandomScheduler(seed))
    kernel = emu.kernel
    if schedule == "chaos":
        kernel.environment = ChaosEnvironment(
            seed=seed + 17, veto_probability=0.4, max_delay=60
        )
    elif schedule == "crash":
        CrashPlan().crash_server_at(25, ServerId(0)).install(kernel)
    elif schedule == "lossy":
        kernel.set_transport(
            TransportConfig.lossy(
                chaos_faults(
                    drop=0.0, duplicate=0.05, reorder=0.3, max_delay=20
                ),
                seed=seed + 3,
            ).build()
        )
    recorder = TraceRecorder()
    kernel.add_listener(recorder)
    writers = [emu.add_writer(index) for index in range(2)]
    readers = [emu.add_reader() for _ in range(2)]
    counter = 0
    for _ in range(rounds):
        for writer_index, writer in enumerate(writers):
            counter += 1
            writer.enqueue("write", f"w{writer_index}-{counter}")
        for reader in readers:
            reader.enqueue("read")
        result = emu.system.run_to_quiescence(
            max_steps=100_000, batch_size=batch_size
        )
        assert result.satisfied, (
            f"seed={seed} schedule={schedule} batch={batch_size} did not"
            f" reach quiescence: {result}"
        )
    kernel.remove_listener(recorder)
    assert recorder.entries, "the trace recorder saw no events"
    history_blob = json.dumps(
        emu.history.to_dicts(), sort_keys=True
    ).encode("utf-8")
    trace_blob = "\n".join(
        format_entry(entry) for entry in recorder.entries
    ).encode("utf-8")
    return (
        hashlib.sha256(history_blob).hexdigest(),
        hashlib.sha256(trace_blob).hexdigest(),
    )


@pytest.mark.parametrize("schedule", SCHEDULES)
def test_every_batch_size_matches_unbatched(schedule):
    """All of ``BATCH_SIZES`` reproduce the unbatched run exactly."""
    seed = 123
    baseline = _fingerprint(seed, schedule, batch_size=None)
    for batch_size in BATCH_SIZES:
        assert _fingerprint(seed, schedule, batch_size) == baseline, (
            f"run_batched(batch_size={batch_size}) diverged from run()"
            f" under the {schedule} schedule"
        )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    batch_size=st.sampled_from(BATCH_SIZES),
    schedule=st.sampled_from(SCHEDULES),
)
@settings(max_examples=20, deadline=None)
def test_batched_matches_unbatched_random_scenarios(
    seed, batch_size, schedule
):
    assert _fingerprint(seed, schedule, batch_size) == _fingerprint(
        seed, schedule, batch_size=None
    )
