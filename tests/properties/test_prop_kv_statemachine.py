"""Stateful property test: the KV store as a hypothesis state machine.

Hypothesis drives arbitrary interleavings of puts, gets, crashes (within
the f budget) and snapshots against a model dict; every read must match
the model and the final audit must be clean, on every substrate.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.apps.kv import ReplicatedKVStore

KEYS = ("alpha", "beta", "gamma")


class KVStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = None
        self.model = {}
        self.crashed = set()
        self.f = 2
        self.counter = 0

    @initialize(
        substrate=st.sampled_from(["register", "max-register", "cas"]),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def setup(self, substrate, seed):
        self.store = ReplicatedKVStore(
            substrate=substrate, n=5, f=self.f, k_writers=2, seed=seed
        )

    @rule(key=st.sampled_from(KEYS), writer=st.integers(min_value=0, max_value=1))
    def put(self, key, writer):
        value = f"v{self.counter}"
        self.counter += 1
        self.store.session(writer=writer).put(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def get(self, key):
        assert self.store.get(key) == self.model.get(key)

    @precondition(lambda self: len(self.crashed) < 2)
    @rule(server=st.integers(min_value=0, max_value=4))
    def crash(self, server):
        if server not in self.crashed and len(self.crashed) < self.f:
            self.crashed.add(server)
            self.store.crash_server(server)

    @rule()
    def snapshot(self):
        assert self.store.snapshot() == {
            key: self.model[key] for key in sorted(self.model)
        }

    @invariant()
    def audit_clean(self):
        if self.store is not None and self.store.keys():
            assert all(self.store.audit().values())


KVStoreMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=12, deadline=None
)
TestKVStoreMachine = KVStoreMachine.TestCase
