"""Property tests: the simulator is deterministic given a seed.

A reproduction toolkit must replay runs exactly: identical seeds and
scripts must yield identical histories (op timings, results and low-level
op counts), and different seeds must be able to produce different
interleavings.  The regression test at the bottom pins the strongest
form: rebuilding the same :class:`EmulationSpec` and re-running the same
workload must reproduce the history *and* the full kernel event trace
byte for byte.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.abd import ABDEmulation
from repro.core.emulation import EmulationSpec
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler
from repro.sim.tracing import TraceRecorder, format_entry
from repro.workloads.generators import concurrent_workload
from repro.workloads.runner import run_workload


def _fingerprint(emulation):
    history = [
        (op.seq, op.name, op.invoke_time, op.return_time, repr(op.result))
        for op in emulation.history.all_ops()
    ]
    return history, len(emulation.kernel.ops), emulation.kernel.time


def _run_ws(seed, k, writes):
    emu = WSRegisterEmulation(k=k, n=5, f=2, scheduler=RandomScheduler(seed))
    writers = [emu.add_writer(i) for i in range(k)]
    reader = emu.add_reader()
    for index in range(writes):
        writers[index % k].enqueue("write", f"v{index}")
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
    return _fingerprint(emu)


def _run_abd(seed, clients, writes):
    emu = ABDEmulation(n=5, f=2, scheduler=RandomScheduler(seed))
    handles = [emu.add_client() for _ in range(clients)]
    for index in range(writes):
        handles[index % clients].enqueue("write", f"v{index}")
    for handle in handles:
        handle.enqueue("read")
    assert emu.system.run_to_quiescence().satisfied
    return _fingerprint(emu)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_ws_register_replay_identical(seed, k, writes):
    assert _run_ws(seed, k, writes) == _run_ws(seed, k, writes)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_abd_replay_identical(seed, clients, writes):
    assert _run_abd(seed, clients, writes) == _run_abd(seed, clients, writes)


def test_different_seeds_differ_somewhere():
    fingerprints = {
        _run_abd(seed, clients=3, writes=4)[2] for seed in range(12)
    }
    assert len(fingerprints) > 1  # schedules genuinely vary with the seed


# -- spec + workload replay: byte-identical history and trace ---------------


def _run_spec_workload(algorithm, seed, **params):
    """Build the spec'd emulation, run a fixed workload, serialize both
    the history and the full kernel event trace to bytes."""
    spec = EmulationSpec.make(algorithm, seed=seed, **params)
    workload = concurrent_workload(k=2, n_rounds=2, n_readers=2)
    emulation = spec.build()
    recorder = TraceRecorder()
    emulation.kernel.add_listener(recorder)
    try:
        report = run_workload(emulation, workload)
    finally:
        emulation.kernel.remove_listener(recorder)
    assert report.completed_rounds == len(workload.rounds)
    history_blob = json.dumps(
        report.history.to_dicts(), sort_keys=True
    ).encode("utf-8")
    trace_blob = "\n".join(
        format_entry(entry) for entry in recorder.entries
    ).encode("utf-8")
    assert recorder.entries, "the trace recorder saw no events"
    return history_blob, trace_blob


@pytest.mark.parametrize(
    "algorithm,params",
    [
        ("ws-register", {"k": 2, "n": 5, "f": 2}),
        ("abd", {"n": 5, "f": 2}),
    ],
)
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_spec_workload_replay_is_byte_identical(algorithm, params, seed):
    first_history, first_trace = _run_spec_workload(algorithm, seed, **params)
    second_history, second_trace = _run_spec_workload(algorithm, seed, **params)
    assert first_history == second_history
    assert first_trace == second_trace
