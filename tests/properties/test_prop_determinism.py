"""Property tests: the simulator is deterministic given a seed.

A reproduction toolkit must replay runs exactly: identical seeds and
scripts must yield identical histories (op timings, results and low-level
op counts), and different seeds must be able to produce different
interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.abd import ABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler


def _fingerprint(emulation):
    history = [
        (op.seq, op.name, op.invoke_time, op.return_time, repr(op.result))
        for op in emulation.history.all_ops()
    ]
    return history, len(emulation.kernel.ops), emulation.kernel.time


def _run_ws(seed, k, writes):
    emu = WSRegisterEmulation(k=k, n=5, f=2, scheduler=RandomScheduler(seed))
    writers = [emu.add_writer(i) for i in range(k)]
    reader = emu.add_reader()
    for index in range(writes):
        writers[index % k].enqueue("write", f"v{index}")
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
    return _fingerprint(emu)


def _run_abd(seed, clients, writes):
    emu = ABDEmulation(n=5, f=2, scheduler=RandomScheduler(seed))
    handles = [emu.add_client() for _ in range(clients)]
    for index in range(writes):
        handles[index % clients].enqueue("write", f"v{index}")
    for handle in handles:
        handle.enqueue("read")
    assert emu.system.run_to_quiescence().satisfied
    return _fingerprint(emu)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_ws_register_replay_identical(seed, k, writes):
    assert _run_ws(seed, k, writes) == _run_ws(seed, k, writes)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_abd_replay_identical(seed, clients, writes):
    assert _run_abd(seed, clients, writes) == _run_abd(seed, clients, writes)


def test_different_seeds_differ_somewhere():
    fingerprints = {
        _run_abd(seed, clients=3, writes=4)[2] for seed in range(12)
    }
    assert len(fingerprints) > 1  # schedules genuinely vary with the seed
