"""`repro cluster` / `repro serve`: the socket backend from the CLI."""

import socket
import threading

from repro.cli import build_parser, main
from repro.net.wire import decode_response, encode_request
from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.objects import LowLevelOp, OpKind


class TestParser:
    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.algorithm == "abd"
        assert args.rounds == 2
        assert args.address == []
        assert args.codec == "json"
        assert args.batch_size is None
        assert not args.demo

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.server, args.host, args.port) == (0, "127.0.0.1", 0)
        assert args.codec == "json"

    def test_codec_choices(self):
        args = build_parser().parse_args(["cluster", "--codec", "binary"])
        assert args.codec == "binary"
        args = build_parser().parse_args(["serve", "--codec", "binary"])
        assert args.codec == "binary"


class TestClusterCommand:
    def test_demo_runs_abd_over_sockets(self, capsys):
        assert main(["cluster", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "abd over real sockets" in out
        assert "safety check passed" in out

    def test_single_cas_cluster(self, capsys):
        assert main(["cluster", "--algorithm", "single-cas"]) == 0
        out = capsys.readouterr().out
        assert "single-cas over real sockets" in out
        assert "safety check passed" in out

    def test_demo_with_binary_codec_and_batched_kernel(self, capsys):
        assert main(
            ["cluster", "--demo", "--codec", "binary", "--batch-size", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "abd over real sockets" in out
        assert "safety check passed" in out

    def test_serve_rejects_unknown_server_index(self, capsys):
        assert main(["serve", "-n", "3", "-f", "1", "--server", "9"]) == 2
        err = capsys.readouterr().err
        assert "no server 9" in err

    def test_serve_explains_missing_layout_params(self, capsys):
        assert main(["serve"]) == 2  # abd needs -n/-f
        err = capsys.readouterr().err
        assert "pass -k/-n/-f" in err


def _start_replica_thread():
    """Host single-cas's one server in a daemon thread; return its port."""
    from repro.net.asyncio_transport import run_replica_server

    announced = []
    ready = threading.Event()

    def announce(message):
        announced.append(message)
        ready.set()

    # the same replica spec snapshot_placements derives for single-cas:
    # one CAS object at index 0, initial value 0.
    thread = threading.Thread(
        target=run_replica_server,
        args=(0, [(0, "cas", 0)]),
        kwargs={"port": 0, "announce": announce},
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "replica server did not come up"
    return int(announced[0].rsplit(":", 1)[1])


class TestExternallyHostedReplica:
    def test_raw_socket_round_trip(self):
        port = _start_replica_thread()

        def cas(op_value, expected, new_value):
            return LowLevelOp(
                op_id=OpId(op_value),
                client_id=ClientId(0),
                object_id=ObjectId(0),
                kind=OpKind.CAS,
                args=(expected, new_value),
                trigger_time=0,
            )

        with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
            reader = conn.makefile("rb")
            conn.sendall(encode_request(cas(0, 0, 5)))
            first = decode_response(reader.readline())
            conn.sendall(encode_request(cas(1, 5, 9)))
            second = decode_response(reader.readline())
        # CAS returns the previous value: 0 initially, then the 5 the
        # first swap installed — the replica really holds state.
        assert first == {"op": 0, "result": 0}
        assert second == {"op": 1, "result": 5}

    def test_cluster_connects_to_external_server(self, capsys):
        port = _start_replica_thread()
        code = main(
            [
                "cluster",
                "--algorithm",
                "single-cas",
                "--address",
                f"127.0.0.1:{port}",
                "--rounds",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"127.0.0.1:{port}" in out
        assert "safety check passed" in out
