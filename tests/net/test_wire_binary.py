"""Fuzz/property tests for the binary wire codec.

Three claims, each load-bearing for running real protocols over it:

* **Round-trip fidelity** — every value shape the protocols can put on
  the wire (unicode strings, raw bytes, arbitrary-precision ints,
  floats, None, booleans, nested lists/tuples/dicts, TSVal timestamps)
  survives encode→decode exactly, type included (tuple stays tuple,
  ``True`` never collapses into ``1``).
* **Loud rejection** — truncated payloads, trailing garbage, unknown
  tags and oversized length prefixes raise; no prefix of a valid frame
  decodes to a partial value.
* **JSON↔binary equivalence** — on a recorded seeded cluster session
  (every low-level request and response of a full WSRegister run), the
  two codecs decode each other's input to the same operations and the
  same results.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.wire import (
    MAX_FRAME_BYTES,
    BinaryWireCodec,
    JsonWireCodec,
    decode_binary_request,
    decode_binary_response,
    encode_binary_request,
    encode_binary_response,
    get_codec,
)
from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.values import TSVal


def _values(max_leaves=20):
    """Recursive strategy over every wire-encodable value shape.

    Floats exclude NaN (NaN != NaN breaks round-trip equality, and no
    protocol value is ever NaN); dict keys are strings, the only key
    type either codec accepts.
    """
    leaves = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),  # unbounded: LEB128 must carry any precision
        st.floats(allow_nan=False),
        st.text(),
        st.binary(),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.lists(children, max_size=4).map(tuple),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
            st.builds(
                TSVal,
                ts=st.integers(min_value=0, max_value=2**40),
                wid=st.integers(min_value=0, max_value=64),
                val=children,
            ),
        ),
        max_leaves=max_leaves,
    )


def _request(args):
    return LowLevelOp(
        op_id=OpId(7),
        client_id=ClientId(2),
        object_id=ObjectId(3),
        kind=OpKind.WRITE,
        args=args,
        trigger_time=0,
    )


@given(args=st.lists(_values(), max_size=3).map(tuple))
@settings(max_examples=150, deadline=None)
def test_request_roundtrip(args):
    frame = encode_binary_request(_request(args))
    decoded = decode_binary_request(frame[4:])
    assert decoded.args == args
    assert [type(a) for a in decoded.args] == [type(a) for a in args]
    assert decoded.op_id == OpId(7)
    assert decoded.client_id == ClientId(2)
    assert decoded.object_id == ObjectId(3)
    assert decoded.kind is OpKind.WRITE


@given(result=_values(), op_value=st.integers(min_value=0, max_value=2**70))
@settings(max_examples=150, deadline=None)
def test_response_roundtrip(result, op_value):
    frame = encode_binary_response(op_value, result)
    decoded = decode_binary_response(frame[4:])
    assert decoded == {"op": op_value, "result": result}
    assert type(decoded["result"]) is type(result)


def test_type_fidelity_pins():
    """The classic confusions, pinned explicitly."""
    for value, other in ((True, 1), (False, 0), (1, True), (0, False)):
        frame = encode_binary_response(0, value)
        decoded = decode_binary_response(frame[4:])["result"]
        assert decoded == value and type(decoded) is type(value), (
            f"{value!r} decoded as {decoded!r} (confusable with {other!r})"
        )
    tup = decode_binary_response(encode_binary_response(0, (1, 2))[4:])
    assert type(tup["result"]) is tuple
    lst = decode_binary_response(encode_binary_response(0, [1, 2])[4:])
    assert type(lst["result"]) is list
    big = -(2**200) + 17
    assert decode_binary_response(
        encode_binary_response(0, big)[4:]
    )["result"] == big


@given(args=st.lists(_values(max_leaves=8), max_size=2).map(tuple))
@settings(max_examples=40, deadline=None)
def test_no_truncation_decodes(args):
    """No strict prefix of a valid payload is accepted."""
    payload = encode_binary_request(_request(args))[4:]
    for cut in range(len(payload)):
        with pytest.raises(ValueError):
            decode_binary_request(payload[:cut])


def test_trailing_and_junk_rejected():
    payload = encode_binary_request(_request((1, "x")))[4:]
    with pytest.raises(ValueError):
        decode_binary_request(payload + b"\x00")
    with pytest.raises(ValueError):
        decode_binary_request(b"\xff" + payload[1:])  # bad frame kind
    with pytest.raises(ValueError):
        decode_binary_response(payload)  # request payload as response
    bad_tag = bytearray(encode_binary_response(1, None)[4:])
    bad_tag[-1] = 0x7F  # unknown value tag
    with pytest.raises(ValueError):
        decode_binary_response(bytes(bad_tag))
    with pytest.raises(TypeError):
        encode_binary_response(1, object())
    with pytest.raises(TypeError):
        encode_binary_response(1, {1: "non-string key"})


def _read_all_frames(codec, data):
    """Drive codec.read_frame over a fed StreamReader synchronously."""

    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        while True:
            frame = await codec.read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(_run())


def test_framing_splits_pipelined_stream():
    """Many frames in one byte blob split exactly, for both codecs."""
    ops = [_request((index, f"v{index}")) for index in range(5)]
    for codec in (BinaryWireCodec, JsonWireCodec):
        blob = b"".join(codec.encode_request(op) for op in ops)
        frames = _read_all_frames(codec, blob)
        assert len(frames) == len(ops)
        # read_frame hands back exactly what decode_request expects:
        # the line for json, the length-stripped payload for binary.
        for frame, op in zip(frames, ops):
            assert codec.decode_request(frame).args == op.args


def test_oversized_length_prefix_rejected_before_allocation():
    huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(ValueError):
        _read_all_frames(BinaryWireCodec, huge)


def test_mid_frame_eof_raises():
    frame = encode_binary_response(3, "abc")
    with pytest.raises(asyncio.IncompleteReadError):
        _read_all_frames(BinaryWireCodec, frame[: len(frame) - 1])
    with pytest.raises(asyncio.IncompleteReadError):
        _read_all_frames(BinaryWireCodec, frame[:2])  # inside the header


def test_get_codec():
    assert get_codec("json") is JsonWireCodec
    assert get_codec("binary") is BinaryWireCodec
    with pytest.raises(ValueError):
        get_codec("msgpack")


def test_codecs_agree_on_recorded_cluster_session():
    """Golden equivalence: one seeded WSRegister run, every leg, both
    codecs decode to the same operations and results."""
    from repro.core.ws_register import WSRegisterEmulation
    from repro.sim.scheduling import RandomScheduler

    emu = WSRegisterEmulation(2, 5, 2, scheduler=RandomScheduler(42))
    writers = [emu.add_writer(index) for index in range(2)]
    reader = emu.add_reader()
    for round_index in range(3):
        for writer in writers:
            writer.enqueue("write", f"value-{round_index}")
        reader.enqueue("read")
    result = emu.system.run_to_quiescence()
    assert result.satisfied
    ops = list(emu.kernel.ops.values())
    assert len(ops) > 20, "session too small to be a meaningful golden"
    for op in ops:
        via_json = JsonWireCodec.decode_request(
            JsonWireCodec.encode_request(op)
        )
        via_binary = BinaryWireCodec.decode_request(
            BinaryWireCodec.encode_request(op)[4:]
        )
        for field in ("op_id", "client_id", "object_id", "kind", "args"):
            assert getattr(via_json, field) == getattr(op, field)
            assert getattr(via_binary, field) == getattr(op, field)
        if op.respond_time is None:
            continue  # covering op: never responded, no result leg
        json_response = JsonWireCodec.decode_response(
            JsonWireCodec.encode_response(op.op_id.value, op.result)
        )
        binary_response = BinaryWireCodec.decode_response(
            BinaryWireCodec.encode_response(op.op_id.value, op.result)[4:]
        )
        assert json_response == binary_response
        assert json_response["result"] == op.result
