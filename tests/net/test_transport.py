"""The transport seam itself: kernel wiring, arrival, delivery, dedup."""

import pytest

from repro.net import InProcTransport, TransportConfig
from repro.net.transport import Transport
from repro.sim.client import ClientRuntime
from repro.sim.ids import ClientId, OpId
from repro.sim.system import build_system
from tests.conftest import ToyProtocol


def _toy_system(transport=None, n_servers=1, placements=None):
    system = build_system(
        n_servers, placements or [(0, "register", None)], transport=transport
    )
    runtime = system.add_client(ClientId(0), ToyProtocol())
    return system, runtime


class TestDefaultWiring:
    def test_kernel_defaults_to_inproc(self):
        system, _ = _toy_system()
        assert isinstance(system.kernel.transport, InProcTransport)
        assert system.kernel.transport.kernel is system.kernel

    def test_inproc_is_inactive_and_local(self):
        transport = InProcTransport()
        assert not transport.active
        assert not transport.remote

    def test_set_transport_before_run(self):
        system, _ = _toy_system()
        replacement = InProcTransport()
        system.kernel.set_transport(replacement)
        assert system.kernel.transport is replacement
        assert replacement.kernel is system.kernel

    def test_set_transport_refused_after_trigger(self):
        system, runtime = _toy_system()
        runtime.enqueue("write", "v")
        assert system.run_to_quiescence().satisfied
        with pytest.raises(RuntimeError, match="set_transport"):
            system.kernel.set_transport(InProcTransport())

    def test_config_roundtrip_builds_inproc(self):
        transport = TransportConfig.inproc().build()
        assert isinstance(transport, InProcTransport)
        system, runtime = _toy_system(transport=transport)
        runtime.enqueue("write", "v")
        runtime.enqueue("read")
        assert system.run_to_quiescence().satisfied
        assert [op.result for op in system.history.all_ops()] == ["ack", "v"]

    def test_bare_lossy_config_normalizes_its_plan(self):
        from repro.net import FaultPlan

        # a directly constructed lossy config and the .lossy() constructor
        # describe the same transport, so they must be equal — otherwise
        # they would split into two result-cache cells.
        direct = TransportConfig(kind="lossy")
        built = TransportConfig.lossy()
        assert direct.plan == FaultPlan()
        assert direct == built
        assert direct.cache_payload() == built.cache_payload()


class _ManualTransport(Transport):
    """Holds requests until the test releases them (out of order)."""

    active = True
    remote = False

    def __init__(self):
        super().__init__()
        self.held = []
        self.arrived = set()

    def send_request(self, op):
        self.held.append(op.op_id)

    def request_arrived(self, op):
        return op.op_id in self.arrived

    def send_response(self, op):
        self._kernel.deliver(op)

    def release(self, op_id):
        self.held.remove(op_id)
        self.arrived.add(op_id)
        self._kernel.arrive(op_id)


class TestArrival:
    def test_out_of_order_arrival_restores_sorted_respond_actions(self):
        transport = _ManualTransport()
        system, runtime = _toy_system(transport=transport)
        kernel = system.kernel
        runtime.enqueue("write", "a")
        kernel.force_client_step(ClientId(0))  # invoke: triggers op0
        other = system.add_client(ClientId(1), ToyProtocol())
        other.enqueue("write", "b")
        kernel.force_client_step(ClientId(1))  # triggers op1
        assert [op_id for op_id in transport.held] == [OpId(0), OpId(1)]

        transport.release(OpId(1))  # later op arrives first
        transport.release(OpId(0))
        assert list(kernel._respond_actions) == [OpId(0), OpId(1)]
        kernel.check_incremental()  # incremental view matches the oracle

    def test_duplicate_and_stale_arrivals_are_noops(self):
        transport = _ManualTransport()
        system, runtime = _toy_system(transport=transport)
        kernel = system.kernel
        runtime.enqueue("write", "a")
        kernel.force_client_step(ClientId(0))
        transport.release(OpId(0))
        kernel.arrive(OpId(0))  # duplicate arrival
        assert list(kernel._respond_actions) == [OpId(0)]
        kernel.force_respond(OpId(0))
        kernel.arrive(OpId(0))  # stale arrival after the respond
        assert list(kernel._respond_actions) == []

    def test_oracle_excludes_unarrived_requests(self):
        transport = _ManualTransport()
        system, runtime = _toy_system(transport=transport)
        kernel = system.kernel
        runtime.enqueue("write", "a")
        kernel.force_client_step(ClientId(0))
        respond_ops = [
            action.op_id
            for action in kernel.enabled_actions()
            if action.op_id is not None
        ]
        assert respond_ops == []  # pending but not arrived: not respondable
        transport.release(OpId(0))
        respond_ops = [
            action.op_id
            for action in kernel.enabled_actions()
            if action.op_id is not None
        ]
        assert respond_ops == [OpId(0)]
        kernel.check_incremental()


class TestDuplicateResponses:
    def test_second_delivery_is_counted_and_dropped(self):
        class CountingProtocol(ToyProtocol):
            def __init__(self):
                super().__init__()
                self.deliveries = 0

            def on_response(self, ctx, op):
                self.deliveries += 1
                super().on_response(ctx, op)

        protocol = CountingProtocol()
        system = build_system(1, [(0, "register", None)])
        runtime = system.add_client(ClientId(0), protocol)
        runtime.enqueue("write", "v")
        assert system.run_to_quiescence().satisfied
        (op,) = system.kernel.ops.values()
        assert protocol.deliveries == 1

        system.kernel.deliver(op)  # a duplicated response leg
        assert protocol.deliveries == 1  # handler not re-run
        assert runtime.duplicate_responses == 1
