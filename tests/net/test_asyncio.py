"""AsyncioTransport: unchanged protocols over real localhost sockets."""

import pytest

from repro.consistency.linearizability import is_linearizable
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.specs import MaxRegisterSpec, RegisterSpec
from repro.consistency.ws import check_ws_regular
from repro.core.emulation import EmulationSpec
from repro.net import TransportConfig
from repro.net.asyncio_transport import AsyncioTransport, snapshot_placements
from repro.net.wire import (
    decode_request,
    decode_response,
    decode_value,
    encode_request,
    encode_response,
    encode_value,
)
from repro.sim.ids import ClientId, ObjectId, OpId
from repro.sim.objects import LowLevelOp, OpKind
from repro.sim.values import TSVal

from tests.net.test_lossy import SCENARIOS


class TestWireCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            0,
            3.5,
            "text",
            (1, "a", None),
            TSVal(ts=3, wid=1, val="payload"),
            [TSVal(ts=0, wid=0, val=None), (1, 2)],
            {"nested": {"tuple": (1, (2, 3))}},
            (),
        ],
    )
    def test_value_roundtrip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value)

    def test_codec_is_closed(self):
        with pytest.raises(TypeError):
            encode_value({1, 2})
        with pytest.raises(TypeError):
            encode_value(object())
        with pytest.raises(TypeError):
            encode_value({0: "non-string key"})

    def test_request_roundtrip(self):
        op = LowLevelOp(
            op_id=OpId(7),
            client_id=ClientId(2),
            object_id=ObjectId(3),
            kind=OpKind.WRITE_MAX,
            args=(TSVal(ts=1, wid=0, val="v"),),
            trigger_time=99,
        )
        frame = encode_request(op)
        assert frame.endswith(b"\n")
        decoded = decode_request(frame)
        assert decoded.op_id == op.op_id
        assert decoded.client_id == op.client_id
        assert decoded.object_id == op.object_id
        assert decoded.kind == op.kind
        assert decoded.args == op.args
        assert decoded.trigger_time == 0  # timing stays client-side

    def test_response_roundtrip(self):
        frame = encode_response(11, TSVal(ts=2, wid=1, val=(1, 2)))
        decoded = decode_response(frame)
        assert decoded["op"] == 11
        assert decoded["result"] == TSVal(ts=2, wid=1, val=(1, 2))


class TestPlacementSnapshot:
    def test_snapshot_covers_every_server(self):
        spec = EmulationSpec.make("abd", n=3, f=1, seed=0)
        emulation = spec.build()
        placements = snapshot_placements(emulation.kernel.object_map)
        assert sorted(placements) == [0, 1, 2]
        for replicas in placements.values():
            assert replicas, "every ABD server hosts at least one replica"
            for _, type_name, _ in replicas:
                assert type_name == "max-register"


class TestAddressValidation:
    def test_partial_address_list_is_rejected_at_bind(self):
        # one address for three servers: an op routed to s1 or s2 would
        # have no connection and the run would stall silently, so bind()
        # must refuse before any socket is opened.
        spec = EmulationSpec.make(
            "abd", n=3, f=1, seed=0,
            transport=TransportConfig.asyncio(("127.0.0.1:9999",)),
        )
        with pytest.raises(ValueError, match="1 address"):
            spec.build()


def run_cluster(algorithm, seed=0, rounds=2, codec="json"):
    params, write_op, read_op, value_kind, _ = SCENARIOS[algorithm]
    spec = EmulationSpec.make(
        algorithm,
        seed=seed,
        transport=TransportConfig.asyncio(codec=codec),
        **params,
    )
    emulation = spec.build()
    transport = emulation.kernel.transport
    assert isinstance(transport, AsyncioTransport)
    try:
        writer = emulation.add_writer(0)
        reader = emulation.add_reader()
        for round_index in range(rounds):
            value = (
                round_index + 1
                if value_kind == "int"
                else f"v{round_index}"
            )
            writer.enqueue(write_op, value)
            reader.enqueue(read_op)
            result = emulation.system.run_to_quiescence(max_steps=50_000)
            assert result.satisfied, (
                f"{algorithm} round {round_index} stalled on sockets:"
                f" {result}"
            )
    finally:
        transport.close()
    return emulation, transport


class TestCluster:
    @pytest.mark.parametrize("codec", ["json", "binary"])
    @pytest.mark.parametrize("algorithm", sorted(SCENARIOS))
    def test_every_algorithm_runs_over_sockets(self, algorithm, codec):
        emulation, transport = run_cluster(algorithm, codec=codec)
        assert transport.codec.name == codec
        check = SCENARIOS[algorithm][4]
        history = emulation.history
        if check == "ws":
            assert check_ws_regular(history, cross_check=True) == []
        elif check == "atomic":
            assert is_register_history_atomic(history)
        else:
            assert is_linearizable(history.all_ops(), MaxRegisterSpec(0))
        served = sum(s.requests_served for s in transport.servers.values())
        assert served == len(emulation.kernel.ops)  # one round-trip per op

    def test_results_come_from_replicas_not_local_shadows(self):
        emulation, transport = run_cluster("abd", seed=4)
        assert transport.remote
        # the kernel-side shadow objects were never applied to: they still
        # hold their initial values, while the replicas advanced.
        object_map = emulation.kernel.object_map
        shadows = [
            object_map.object(server.object_ids[0])
            for server in object_map.servers
        ]
        assert all(s.value == s.initial_value for s in shadows)
        replicas = [
            replica
            for server in transport.servers.values()
            for replica in server.replicas.values()
        ]
        assert any(r.value != r.initial_value for r in replicas)

    def test_history_is_linearizable_end_to_end(self):
        emulation, _ = run_cluster("abd", seed=1, rounds=3)
        assert is_linearizable(
            emulation.history.all_ops(), RegisterSpec(None)
        )

    def test_close_is_idempotent_and_restartable_state_is_cleared(self):
        _, transport = run_cluster("abd")
        transport.close()  # second close is a no-op
        assert transport._thread is None
        assert not transport._started
