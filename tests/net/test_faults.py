"""Fault models: validation, determinism, composition."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.net.faults import (
    REQUEST,
    RESPONSE,
    Delay,
    Drop,
    Duplicate,
    FaultPlan,
    LinkFaults,
    Partition,
    Reorder,
    chaos_faults,
    straggler_plan,
)


class TestValidation:
    def test_probabilities_must_be_sub_one(self):
        with pytest.raises(ValueError):
            Drop(1.0)
        with pytest.raises(ValueError):
            Duplicate(-0.1)
        with pytest.raises(ValueError):
            Reorder(1.5)

    def test_delay_bounds(self):
        with pytest.raises(ValueError):
            Delay(5, 2)
        with pytest.raises(ValueError):
            Delay(-1, 2)

    def test_partition_must_heal_after_start(self):
        with pytest.raises(ValueError):
            Partition(start=10, heal=10, servers=(0,))
        Partition(start=10, heal=11, servers=(0,))  # ok

    def test_partition_servers_are_normalized(self):
        partition = Partition(start=0, heal=None, servers=(2, 0, 2))
        assert partition.servers == (0, 2)


class TestPartitionWindow:
    def test_covers_window(self):
        partition = Partition(start=10, heal=20, servers=(1,))
        assert not partition.covers(9, 1)
        assert partition.covers(10, 1)
        assert partition.covers(19, 1)
        assert not partition.covers(20, 1)
        assert not partition.covers(15, 0)

    def test_unhealed_partition_covers_forever(self):
        partition = Partition(start=5, heal=None, servers=(0,))
        assert partition.covers(1_000_000, 0)


class TestFateDeterminism:
    PLAN = chaos_faults(drop=0.2, duplicate=0.2, reorder=0.5, max_delay=40)

    def test_same_inputs_same_fate(self):
        for op_value in range(50):
            first = self.PLAN.fate(7, op_value, REQUEST, 0, time=3)
            second = self.PLAN.fate(7, op_value, REQUEST, 0, time=3)
            assert first == second

    def test_legs_are_independent_streams(self):
        fates = {
            (leg, op_value): self.PLAN.fate(7, op_value, leg, 0, time=0)
            for leg in (REQUEST, RESPONSE)
            for op_value in range(200)
        }
        request_fates = [fates[(REQUEST, i)] for i in range(200)]
        response_fates = [fates[(RESPONSE, i)] for i in range(200)]
        assert request_fates != response_fates

    def test_seed_changes_fates(self):
        fates_a = [self.PLAN.fate(1, i, REQUEST, 0, 0) for i in range(200)]
        fates_b = [self.PLAN.fate(2, i, REQUEST, 0, 0) for i in range(200)]
        assert fates_a != fates_b

    def test_partition_overrides_link_faults(self):
        plan = FaultPlan(
            default=LinkFaults(drop=Drop(0.5)),
            partitions=(Partition(start=0, heal=30, servers=(0,)),),
        )
        fate = plan.fate(0, 1, REQUEST, 0, time=10)
        assert fate.partitioned and not fate.dropped
        assert fate.heal_time == 30

    def test_unhealed_partition_drops(self):
        plan = FaultPlan(
            partitions=(Partition(start=0, heal=None, servers=(0,)),)
        )
        fate = plan.fate(0, 1, REQUEST, 0, time=5)
        assert fate.dropped and fate.partitioned


#: child program for the cross-process test: same plan, same fate keys,
#: printed as JSON.  Runs under a pinned, different hash salt — if fate()
#: ever hashes a str (leg names, say), the salted hash diverges and the
#: fates stop matching the parent's.
_CHILD_PROGRAM = """
import dataclasses, json
from repro.net.faults import REQUEST, RESPONSE, chaos_faults

plan = chaos_faults(drop=0.2, duplicate=0.2, reorder=0.5, max_delay=40)
fates = [
    dataclasses.astuple(plan.fate(7, op_value, leg, server, 0))
    for op_value in range(100)
    for leg in (REQUEST, RESPONSE)
    for server in (0, 1)
]
print(json.dumps(fates))
"""


class TestCrossProcessDeterminism:
    """Fate streams must replay in *other* processes, not just this one:
    the ResultCache persists lossy results across sessions and the CI
    smoke job compares history digests from separate interpreters."""

    def test_leg_codes_are_ints(self):
        # the leg goes into the hashed RNG key; str hashing is salted
        # per process, so a string here would break cross-process replay.
        assert isinstance(REQUEST, int)
        assert isinstance(RESPONSE, int)
        assert REQUEST != RESPONSE

    def test_fates_survive_a_different_hash_salt(self):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "424242"
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        child = json.loads(
            subprocess.run(
                [sys.executable, "-c", _CHILD_PROGRAM],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            ).stdout
        )
        plan = chaos_faults(drop=0.2, duplicate=0.2, reorder=0.5, max_delay=40)
        parent = [
            dataclasses.astuple(plan.fate(7, op_value, leg, server, 0))
            for op_value in range(100)
            for leg in (REQUEST, RESPONSE)
            for server in (0, 1)
        ]
        assert json.loads(json.dumps(parent)) == child


class TestPlans:
    def test_per_server_override(self):
        slow = LinkFaults(delay=Delay(50, 60))
        plan = FaultPlan(per_server=((2, slow),))
        assert plan.link(2) is slow
        assert plan.link(0) == LinkFaults()

    def test_straggler_plan_slows_only_the_stragglers(self):
        plan = straggler_plan([1], slow_delay=(30, 40), base_delay=(0, 0))
        fast = plan.fate(0, 1, REQUEST, 0, time=0)
        slow = plan.fate(0, 1, REQUEST, 1, time=0)
        assert fast.delay == 0
        assert 30 <= slow.delay <= 40

    def test_chaos_faults_compose_everything(self):
        plan = chaos_faults(drop=0.3, duplicate=0.3, reorder=0.5, max_delay=20)
        fates = [plan.fate(11, i, REQUEST, 0, 0) for i in range(300)]
        assert any(f.dropped for f in fates)
        assert any(f.duplicated for f in fates)
        assert any(f.reordered for f in fates)
        assert any(f.delay > 0 for f in fates)

    def test_plans_are_hashable_and_picklable(self):
        import pickle

        plan = chaos_faults()
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))
        assert pickle.loads(pickle.dumps(plan)) == plan
