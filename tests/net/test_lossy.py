"""LossyTransport: safety under network faults, liveness under fairness.

The scenarios here are the executable form of the distinction in
docs/MODEL.md: injected network faults are out-of-model stressors, so
the safety checkers must pass under *every* seeded fault plan, while
liveness (runs completing) is asserted only for plans that preserve
eventual delivery — no drops, partitions that heal.
"""

import json

import pytest

from repro.consistency.linearizability import is_linearizable
from repro.consistency.mw_regularity import check_mw_regular_weak
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.specs import MaxRegisterSpec, RegisterSpec
from repro.consistency.ws import check_ws_regular
from repro.core.emulation import EmulationSpec
from repro.net import (
    Delay,
    Duplicate,
    FaultPlan,
    LinkFaults,
    Partition,
    Reorder,
    TransportConfig,
    chaos_faults,
)

#: algorithm -> (spec params, write op name, value kind, safety check key)
SCENARIOS = {
    "ws-register": (dict(k=2, n=5, f=2), "write", "read", "str", "ws"),
    "abd": (dict(n=3, f=1), "write", "read", "str", "atomic"),
    "cas-abd": (dict(n=3, f=1), "write", "read", "str", "atomic"),
    "replicated-maxreg": (dict(k=2, n=3, f=1), "write", "read", "str", "ws"),
    "collect-maxreg": (dict(k=2), "write_max", "read_max", "int", "maxreg"),
    "ft-maxreg": (dict(n=3, f=1), "write_max", "read_max", "int", "maxreg"),
    "single-cas": (dict(), "write_max", "read_max", "int", "maxreg"),
}

#: perturbs delivery heavily but preserves eventual delivery: no drops,
#: no partitions — liveness must hold under this plan.
EVENTUAL_DELIVERY = FaultPlan(
    default=LinkFaults(
        duplicate=Duplicate(0.15, offset=4),
        delay=Delay(0, 15),
        reorder=Reorder(0.4, window=8),
    )
)


def assert_safe(algorithm, emulation):
    check = SCENARIOS[algorithm][4]
    history = emulation.history
    if check == "ws":
        assert check_ws_regular(history, cross_check=True) == []
        assert check_mw_regular_weak(history) == []
    elif check == "atomic":
        if history.pending_ops:
            assert is_linearizable(history.all_ops(), RegisterSpec(None))
        else:
            assert is_register_history_atomic(history)
    else:
        assert is_linearizable(history.all_ops(), MaxRegisterSpec(0))


def run_lossy(algorithm, plan, seed, rounds=3, require_live=True):
    """Drive a write-sequential workload over a lossy transport."""
    params, write_op, read_op, value_kind, _ = SCENARIOS[algorithm]
    spec = EmulationSpec.make(
        algorithm,
        seed=seed,
        transport=TransportConfig.lossy(plan, seed=seed + 1),
        **params,
    )
    emulation = spec.build()
    writer = emulation.add_writer(0)
    readers = [emulation.add_reader() for _ in range(2)]
    for round_index in range(rounds):
        value = (
            round_index + 1
            if value_kind == "int"
            else f"v{seed}-{round_index}"
        )
        writer.enqueue(write_op, value)
        for reader in readers:
            reader.enqueue(read_op)
        result = emulation.system.run_to_quiescence(max_steps=200_000)
        if require_live:
            assert result.satisfied, (
                f"{algorithm} seed={seed} round {round_index} did not"
                f" complete under an eventual-delivery plan: {result}"
            )
    return emulation


class TestEventualDeliveryLiveness:
    """No drops + healing partitions => every run completes, safely."""

    @pytest.mark.parametrize("algorithm", sorted(SCENARIOS))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_all_algorithms_live_and_safe(self, algorithm, seed):
        emulation = run_lossy(algorithm, EVENTUAL_DELIVERY, seed)
        assert_safe(algorithm, emulation)
        stats = emulation.kernel.transport.stats()
        assert stats["requests_sent"] > 0
        assert stats["dropped_requests"] == 0
        assert stats["dropped_responses"] == 0
        # every op completed, so any leftover in-flight messages can only
        # be redundant duplicate copies — never an undelivered original.
        assert stats["in_flight"] <= (
            stats["duplicate_requests"] + stats["duplicate_responses"]
        )

    def test_the_plan_actually_perturbs(self):
        totals = {"duplicate_requests": 0, "duplicate_responses": 0,
                  "reordered": 0, "flushes": 0}
        for seed in range(4):
            emulation = run_lossy("abd", EVENTUAL_DELIVERY, seed)
            for key in totals:
                totals[key] += emulation.kernel.transport.counters[key]
        assert totals["reordered"] > 0
        assert totals["duplicate_requests"] + totals["duplicate_responses"] > 0
        assert totals["flushes"] > 0  # idle flushes realized eventual delivery


class TestPartitionHeal:
    PLAN = FaultPlan(
        default=LinkFaults(delay=Delay(0, 2)),
        partitions=(Partition(start=5, heal=60, servers=(0,)),),
    )

    @pytest.mark.parametrize("algorithm", ["abd", "ws-register"])
    def test_partition_heals_and_run_completes(self, algorithm):
        emulation = run_lossy(algorithm, self.PLAN, seed=3)
        assert_safe(algorithm, emulation)
        stats = emulation.kernel.transport.stats()
        assert stats["held_by_partition"] > 0
        # quorum ops complete after n-f replies, so a message held for the
        # partitioned server may outlive the run — but nothing was lost:
        assert stats["dropped_requests"] + stats["dropped_responses"] == 0
        assert not emulation.history.pending_ops


class TestDropsSafetyOnly:
    """Drops break eventual delivery: liveness is NOT asserted, safety is."""

    DROPPY = chaos_faults(drop=0.15, duplicate=0.1, reorder=0.3, max_delay=10)

    @pytest.mark.parametrize("algorithm", ["abd", "ws-register"])
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_safety_holds_whatever_completes(self, algorithm, seed):
        emulation = run_lossy(
            algorithm, self.DROPPY, seed, require_live=False
        )
        if algorithm == "abd":
            assert is_linearizable(
                emulation.history.all_ops(), RegisterSpec(None)
            )
        else:
            assert check_mw_regular_weak(emulation.history) == []

    def test_heavy_drops_starve_liveness(self):
        plan = chaos_faults(drop=0.9, duplicate=0.0, reorder=0.0, max_delay=2)
        emulation = run_lossy("abd", plan, seed=2, require_live=False)
        stats = emulation.kernel.transport.stats()
        assert stats["dropped_requests"] + stats["dropped_responses"] > 0
        incomplete = emulation.history.pending_ops
        assert incomplete, "0.9 drop rate should strand some operation"
        # ... and yet what did complete is still consistent:
        assert is_linearizable(
            emulation.history.all_ops(), RegisterSpec(None)
        )


class TestReproducibility:
    PLAN = chaos_faults(drop=0.1, duplicate=0.1, reorder=0.4, max_delay=12)

    def _fingerprint(self, seed):
        emulation = run_lossy("abd", self.PLAN, seed, require_live=False)
        blob = json.dumps(emulation.history.to_dicts(), sort_keys=True)
        return blob, dict(emulation.kernel.transport.counters)

    def test_same_seed_replays_exactly(self):
        assert self._fingerprint(4) == self._fingerprint(4)

    def test_different_seeds_diverge(self):
        fingerprints = {self._fingerprint(seed)[0] for seed in range(6)}
        assert len(fingerprints) > 1


class TestIncrementalParity:
    def test_incremental_state_matches_oracle_under_lossy_delivery(self):
        spec = EmulationSpec.make(
            "abd",
            n=3,
            f=1,
            seed=6,
            transport=TransportConfig.lossy(EVENTUAL_DELIVERY, seed=13),
        )
        emulation = spec.build()
        writer = emulation.add_writer(0)
        reader = emulation.add_reader()
        writer.enqueue("write", "x")
        writer.enqueue("write", "y")
        reader.enqueue("read")
        kernel = emulation.kernel
        for _ in range(5_000):
            result = kernel.run(max_steps=1)
            kernel.check_incremental()
            if result.reason in ("quiescent", "blocked"):
                break
        assert all(
            c.idle and not c.program for c in kernel.clients.values()
        )
        assert_safe("abd", emulation)
