"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro.apps.epoch import EpochService
from repro.apps.kv import ReplicatedKVStore
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular, check_ws_safe
from repro.core.lemma1 import Lemma1Runner
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.failures import CrashPlan
from repro.sim.ids import ServerId
from repro.sim.kernel import Environment
from repro.sim.scheduling import RandomScheduler
from repro.workloads.generators import write_sequential_workload
from repro.workloads.runner import run_workload


class TestFigure1Configuration:
    """The paper's own example dimensions, end to end: k=5, n=6, f=2."""

    def test_full_workload_under_crashes(self):
        emu = WSRegisterEmulation(
            k=5, n=6, f=2, scheduler=RandomScheduler(11)
        )
        plan = CrashPlan()
        plan.crash_server_at(200, ServerId(2))
        plan.crash_server_at(600, ServerId(5))
        plan.install(emu.kernel)
        workload = write_sequential_workload(
            k=5, writes_per_writer=2, reads_between=1, n_readers=2
        )
        report = run_workload(emu, workload)
        assert report.completed_rounds == len(workload.rounds)
        assert check_ws_regular(report.history, cross_check=True) == []
        assert check_ws_safe(report.history) == []
        assert report.resource_consumption == 25  # Figure 1's register count


class TestAdversaryThenRecovery:
    """After the lower-bound adversary stops, the emulation recovers:
    covering writes drain (possibly reverting registers), retriggered
    writes repair them, and reads remain WS-Regular."""

    def test_reads_correct_after_adversary(self):
        k, n, f = 3, 5, 2

        def factory(scheduler):
            return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

        runner = Lemma1Runner(factory, k=k, f=f)
        runner.run()
        emu = runner.emulation
        # Lift the adversary: everything pending may now respond.
        emu.kernel.environment = Environment()
        drained = emu.kernel.run(max_steps=500_000)
        assert drained.reason == "quiescent"
        reader = emu.add_reader()
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        # The last adversary-phase write was v3; reads must observe it.
        assert emu.history.reads[-1].result == "v3"
        assert check_ws_regular(emu.history, cross_check=True) == []

    def test_writers_can_continue_after_adversary(self):
        k, n, f = 2, 5, 2

        def factory(scheduler):
            return WSRegisterEmulation(k=k, n=n, f=f, scheduler=scheduler)

        runner = Lemma1Runner(factory, k=k, f=f)
        runner.run()
        emu = runner.emulation
        emu.kernel.environment = Environment()
        emu.kernel.run(max_steps=500_000)
        # Writer 0 (client c0 from phase 1) writes again normally.
        writer = emu.kernel.client(emu.writer_client_id(0))
        writer.enqueue("write", "after-adversary")
        assert emu.system.run_to_quiescence().satisfied
        reader = emu.add_reader()
        reader.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert emu.history.reads[-1].result == "after-adversary"
        assert check_ws_regular(emu.history, cross_check=True) == []


class TestKVReconfigurationScenario:
    """A KV store guarded by an epoch service: a config change bumps the
    epoch; stale writers detect it and stop."""

    def test_epoch_guarded_store(self):
        epochs = EpochService(n=5, f=2, scheduler=RandomScheduler(21))
        store = ReplicatedKVStore(
            substrate="max-register", n=5, f=2, k_writers=2, seed=21
        )

        # Normal operation in epoch 1.
        config_epoch = epochs.advance(process=0)
        store.session(writer=0).put("profile", {"name": "ada"})
        assert store.get("profile") == {"name": "ada"}

        # Reconfiguration: another process moves to epoch 2.
        epochs.advance(process=1)
        observed = epochs.current(process=0)
        assert observed > config_epoch  # the old primary must notice

        # Crash f servers of both services; everything still works.
        epochs.crash_server(0)
        store.crash_server(0)
        epochs.crash_server(4)
        store.crash_server(4)
        store.session(writer=1).put("profile", {"name": "ada", "epoch": observed})
        assert store.get("profile")["epoch"] == 2
        assert epochs.current(process=9) == 2
        assert all(store.audit().values())


@pytest.mark.parametrize("substrate", ["register", "max-register", "cas"])
class TestKVSoak:
    def test_many_keys_many_crashes(self, substrate):
        store = ReplicatedKVStore(
            substrate=substrate, n=5, f=2, k_writers=3, seed=5
        )
        for index in range(6):
            store.session(writer=index % 3).put(f"key{index}", index * 10)
        store.crash_server(1)
        for index in range(6):
            assert store.get(f"key{index}") == index * 10
        store.crash_server(3)
        for index in range(6):
            store.session(writer=(index + 1) % 3).put(f"key{index}", index * 10 + 1)
            assert store.get(f"key{index}") == index * 10 + 1
        assert all(store.audit().values())
