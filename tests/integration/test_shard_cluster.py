"""End-to-end: the sharded service over real localhost sockets.

Three shards, each served by its own self-hosted
:class:`~repro.net.asyncio_transport.AsyncioTransport` (replicas live in
the transport's event-loop thread, reached through actual TCP
connections), driven by the open-loop generator while the fault
gauntlet runs — a partition that heals, then a replica crash and
restart mid-traffic.  Every key's history must still satisfy its
substrate's consistency condition.
"""

import json
import time

import pytest

from repro.apps.shard import (
    Scenario,
    ShardedKVService,
    ShardServiceConfig,
    run_loadgen,
)
from repro.net.asyncio_transport import AsyncioTransport


def socket_service(shards=3, substrate="max-register", n=3, f=1, seed=0):
    config = ShardServiceConfig.make(
        shards=shards, substrate=substrate, n=n, f=f, capacity=16, seed=seed
    )
    transports = [
        AsyncioTransport(idle_timeout=0.02) for _ in range(shards)
    ]
    return ShardedKVService(config, transports=transports)


class TestSocketCluster:
    def test_sync_sessions_over_sockets(self):
        service = socket_service(seed=1)
        try:
            with service.session(writer=0) as s:
                for i in range(9):
                    s.put(f"key-{i}", f"v{i}")
                assert s.scan() == {f"key-{i}": f"v{i}" for i in range(9)}
            assert all(service.audit().values())
            # The three shard transports really served over sockets.
            for fleet in service.fleets:
                assert fleet.transport.remote
                served = sum(
                    server.requests_served
                    for server in fleet.transport.servers.values()
                )
                assert served > 0
        finally:
            service.close()

    def test_loadgen_survives_crash_restart_mid_traffic(self):
        service = socket_service(seed=2)

        def crash():
            for fleet in service.fleets:
                fleet.transport.crash_replica(2)
            return "crashed replica 2 (state retained)"

        def restart():
            for fleet in service.fleets:
                fleet.transport.restart_replica(2)
            return "restarted replica 2"

        def partition():
            service.partition([0])
            return "blackholed replica 0"

        def heal():
            service.heal()
            return "healed"

        try:
            report = run_loadgen(
                service,
                clock=time.perf_counter,
                sleep=time.sleep,
                rate=150.0,
                duration=2.0,
                sessions=60,
                keys=24,
                seed=13,
                scenarios=[
                    Scenario(0.4, "partition", partition),
                    Scenario(0.8, "heal", heal),
                    Scenario(1.2, "crash", crash),
                    Scenario(1.6, "restart", restart),
                ],
                drain_timeout=20.0,
            )
        finally:
            service.close()
        assert [s["name"] for s in report["scenarios"]] == [
            "partition", "heal", "crash", "restart",
        ]
        assert report["incomplete_ops"] == 0, report
        assert report["sustained_fraction"] == 1.0
        assert report["audit"]["all_ok"], report["audit"]
        # The partition really dropped traffic on the floor.
        dropped = sum(
            fleet.transport.dropped_frames for fleet in service.fleets
        )
        assert dropped > 0


class TestLoadgenCLI:
    def test_sim_transport_loadgen_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        code = main(
            [
                "loadgen",
                "--transport", "sim",
                "--shards", "3",
                "--rate", "300",
                "--duration", "0.4",
                "--sessions", "40",
                "--keys", "12",
                "--seed", "5",
                "--out", str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["benchmark"] == "kv_loadgen"
        assert report["audit"]["all_ok"]
        assert report["completed_ops"] == report["offered_ops"]
        assert report["transport"] == "sim"

    def test_spawn_gauntlet_rejects_amnesia_unsafe_fleet(self, capsys):
        from repro.cli import main

        # n = 2f+1 cannot absorb a wiped-and-restarted replica on top of
        # the f crash allowance; the CLI must refuse up front.
        code = main(
            [
                "loadgen",
                "--transport", "spawn",
                "--scenario", "gauntlet",
                "-n", "3",
                "-f", "1",
                "--duration", "0.2",
            ]
        )
        assert code == 2
        assert "2f+2" in capsys.readouterr().err
