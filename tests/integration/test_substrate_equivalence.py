"""Cross-substrate equivalence: one workload, every emulation.

All the register emulations implement the *same* abstract object; under
an identical write-sequential workload they must produce identical read
results (the values, not the internals), whatever the substrate and its
space budget.  This is the library's broadest integration net: a
regression anywhere in the five stacks shows up as a divergent value.
"""

import pytest

from repro.core.abd import ABDEmulation
from repro.core.cas_maxreg import CASABDEmulation
from repro.core.collect_maxreg import ReplicatedMaxRegisterEmulation
from repro.core.multi import MultiRegisterDeployment
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.scheduling import RandomScheduler


def _drive(emulation, k):
    writers = [emulation.add_writer(i) for i in range(k)]
    reader = emulation.add_reader()
    observed = []
    for round_index in range(2):
        for index, writer in enumerate(writers):
            writer.enqueue("write", f"r{round_index}w{index}")
            assert emulation.system.run_to_quiescence(
                max_steps=1_000_000
            ).satisfied
            reader.enqueue("read")
            assert emulation.system.run_to_quiescence(
                max_steps=1_000_000
            ).satisfied
            observed.append(emulation.history.reads[-1].result)
    return observed


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 11])
    def test_all_substrates_agree(self, seed):
        k, n, f = 2, 5, 2
        expected = [
            f"r{round_index}w{index}"
            for round_index in range(2)
            for index in range(k)
        ]

        emulations = {
            "ws-register": WSRegisterEmulation(
                k=k, n=n, f=f, scheduler=RandomScheduler(seed)
            ),
            "abd": ABDEmulation(n=n, f=f, scheduler=RandomScheduler(seed)),
            "cas-abd": CASABDEmulation(
                n=n, f=f, scheduler=RandomScheduler(seed)
            ),
            "replicated-maxreg": ReplicatedMaxRegisterEmulation(
                k=k, n=n, f=f, scheduler=RandomScheduler(seed)
            ),
            "shared-fleet": MultiRegisterDeployment(
                m=1, k=k, n=n, f=f, scheduler=RandomScheduler(seed)
            ).register(0),
        }
        for name, emulation in emulations.items():
            observed = _drive(emulation, k)
            assert observed == expected, (
                f"{name} diverged: {observed} != {expected}"
            )

    def test_space_budgets_differ_as_table1_says(self):
        k, n, f = 3, 5, 2
        ws = WSRegisterEmulation(k=k, n=n, f=f)
        abd = ABDEmulation(n=n, f=f)
        cas = CASABDEmulation(n=n, f=f)
        assert ws.object_map.n_objects == k * (2 * f + 1)
        assert abd.object_map.n_objects == n
        assert cas.object_map.n_objects == n
