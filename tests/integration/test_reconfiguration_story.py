"""The full reconfiguration story, end to end.

A narrative integration test composing the whole stack the way a real
deployment would: a config service fencing epochs, a shared-fleet KV
store carrying data, crashes mid-story, an install race, and a final
verification sweep over every piece.
"""

from repro.apps.config import ConfigService, InstallRaced
from repro.apps.kv import ReplicatedKVStore
from repro.verify import verify_run


class TestReconfigurationStory:
    def test_full_story(self):
        # Act 1: a cluster boots with config v1 and starts serving data.
        config = ConfigService(
            n=5, f=2, initial_config={"members": 5, "version": 1}, seed=31
        )
        store = ReplicatedKVStore(
            substrate="register",
            n=5,
            f=2,
            k_writers=2,
            seed=31,
            shared_fleet=True,
            max_keys=4,
        )
        store.session().put("orders", ["o1"])
        store.session(writer=1).put("users", {"u1": "ada"})
        assert config.fetch() == (0, {"members": 5, "version": 1})

        # Act 2: an operator installs config v2.
        epoch = config.install({"members": 5, "version": 2}, process=0)
        assert epoch == 1

        # Act 3: two servers die; data and config survive (f = 2).
        for server in (0, 4):
            config.crash_server(server)
            store.crash_server(server)
        assert store.get("orders") == ["o1"]
        assert config.fetch(process=3)[1]["version"] == 2

        # Act 4: a lagging operator loses an install race and is told so.
        original_advance = config.epochs.advance

        def racing_advance(process=0):
            claimed = original_advance(process=process)
            config.epochs.propose(claimed + 1, process=99)
            return claimed

        config.epochs.advance = racing_advance
        raced = False
        try:
            config.install({"members": 3, "version": "BAD"}, process=7)
        except InstallRaced:
            raced = True
        finally:
            config.epochs.advance = original_advance
        assert raced
        assert config.fetch(process=8)[1]["version"] == 2  # no clobber

        # Act 5: business as usual on the degraded fleet.
        store.session(writer=1).put("orders", ["o1", "o2"])
        store.session().delete("users")
        assert store.snapshot() == {"orders": ["o1", "o2"]}

        # Epilogue: verify everything that ran.
        assert all(store.audit().values())
        for state in store._keys.values():
            report = verify_run(state.emulation, condition="ws-regular")
            assert report.ok, report.details()
        report = verify_run(
            config.store,
            condition="atomic",
            initial_value=(0, {"members": 5, "version": 1}),
        )
        assert report.ok, report.details()
        report = verify_run(
            config.epochs.register,
            condition="max-register-atomic",
            initial_value=0,
        )
        assert report.ok, report.details()
