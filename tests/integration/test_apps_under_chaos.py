"""Integration: the applications survive chaotic environments.

The KV store and epoch service are driven with chaotic respond delays
plus crashes — the weather the substrate hands real deployments — and
must stay correct.
"""

import pytest

from repro.apps.epoch import EpochService
from repro.core.ft_maxreg import FTMaxRegister
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.chaos import ChaosEnvironment
from repro.sim.scheduling import RandomScheduler
from repro.verify import verify_run


class TestEpochUnderChaos:
    @pytest.mark.parametrize("seed", [3, 13, 23])
    def test_epochs_monotone(self, seed):
        service = EpochService(
            n=5,
            f=2,
            scheduler=RandomScheduler(seed),
            environment=ChaosEnvironment(
                seed=seed, veto_probability=0.6, max_delay=50
            ),
        )
        observed = [service.current()]
        for process in range(4):
            service.advance(process=process)
            observed.append(service.current(process=9))
        assert observed == sorted(observed)
        assert observed[-1] >= 4 - 1  # advances may coalesce, but move

    def test_epoch_with_crashes_and_chaos(self):
        service = EpochService(
            n=5,
            f=2,
            scheduler=RandomScheduler(4),
            environment=ChaosEnvironment(
                seed=4, veto_probability=0.5, max_delay=40
            ),
        )
        service.advance()
        service.crash_server(0)
        service.advance(process=1)
        service.crash_server(2)
        assert service.current(process=5) == 2


class TestRegisterUnderChaosPlusCrashes:
    @pytest.mark.parametrize("seed", [7, 17])
    def test_full_verification(self, seed):
        emu = WSRegisterEmulation(
            k=2,
            n=5,
            f=2,
            scheduler=RandomScheduler(seed),
            environment=ChaosEnvironment(
                seed=seed, veto_probability=0.5, max_delay=60
            ),
        )
        writers = [emu.add_writer(i) for i in range(2)]
        reader = emu.add_reader()
        writers[0].enqueue("write", "a")
        assert emu.system.run_to_quiescence(max_steps=3_000_000).satisfied
        from repro.sim.ids import ServerId

        emu.kernel.crash_server(ServerId(seed % 5))
        writers[1].enqueue("write", "b")
        reader.enqueue("read")
        assert emu.system.run_to_quiescence(max_steps=3_000_000).satisfied
        report = verify_run(emu, condition="ws-regular")
        assert report.ok, report.details()


class TestFTMaxRegisterUnderChaos:
    def test_monotone_and_atomic(self):
        register = FTMaxRegister(
            n=5,
            f=2,
            scheduler=RandomScheduler(9),
            environment=ChaosEnvironment(
                seed=9, veto_probability=0.7, max_delay=50
            ),
        )
        clients = [register.add_client() for _ in range(3)]
        clients[0].enqueue("write_max", 4)
        clients[1].enqueue("write_max", 9)
        clients[2].enqueue("read_max")
        assert register.system.run_to_quiescence(max_steps=3_000_000).satisfied
        report = verify_run(
            register, condition="max-register-atomic", initial_value=0
        )
        assert report.ok, report.details()
