"""Soak scenarios: longer randomized runs across the full stack."""

import random

import pytest

from repro.analysis.baseobject_audit import assert_base_objects_atomic
from repro.analysis.invariants import (
    MonotoneTimestampInvariant,
    WriterCoverInvariant,
)
from repro.consistency.register_atomicity import is_register_history_atomic
from repro.consistency.ws import check_ws_regular, check_ws_safe
from repro.core.abd import ABDEmulation
from repro.core.ws_register import WSRegisterEmulation
from repro.sim.failures import CrashPlan
from repro.sim.ids import ServerId
from repro.sim.scheduling import RandomScheduler


class TestAlgorithm2Soak:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_large_deployment_long_run(self, seed):
        k, n, f = 5, 11, 3
        rng = random.Random(seed)
        emu = WSRegisterEmulation(k=k, n=n, f=f, scheduler=RandomScheduler(seed))
        emu.kernel.add_listener(WriterCoverInvariant(f=f))
        emu.kernel.add_listener(MonotoneTimestampInvariant())
        plan = CrashPlan()
        crash_servers = rng.sample(range(n), f)
        for index, server in enumerate(crash_servers):
            plan.crash_server_at(150 * (index + 1), ServerId(server))
        plan.install(emu.kernel)

        writers = [emu.add_writer(i) for i in range(k)]
        readers = [emu.add_reader() for _ in range(3)]
        sequence = 0
        for round_index in range(6):
            writer = writers[rng.randrange(k)]
            writer.enqueue("write", f"s{seed}-v{sequence}")
            sequence += 1
            for reader in rng.sample(readers, rng.randint(1, 3)):
                reader.enqueue("read")
            result = emu.system.run_to_quiescence(max_steps=1_000_000)
            assert result.satisfied, f"round {round_index} stuck: {result}"

        assert check_ws_regular(emu.history, cross_check=True) == []
        assert check_ws_safe(emu.history) == []
        assert emu.object_map.crashed_servers == {
            ServerId(s) for s in crash_servers
        }

    def test_every_writer_twice_with_audit(self):
        k, n, f = 4, 9, 2
        emu = WSRegisterEmulation(k=k, n=n, f=f, scheduler=RandomScheduler(7))
        writers = [emu.add_writer(i) for i in range(k)]
        reader = emu.add_reader()
        for round_index in range(2):
            for index, writer in enumerate(writers):
                writer.enqueue("write", f"r{round_index}w{index}")
                reader.enqueue("read")
                assert emu.system.run_to_quiescence(
                    max_steps=1_000_000
                ).satisfied
        assert check_ws_regular(emu.history, cross_check=True) == []
        # Substrate self-audit on the smaller per-object projections.
        assert_base_objects_atomic(emu.kernel, max_ops_per_object=20)


class TestABDSoak:
    @pytest.mark.parametrize("seed", [11, 22])
    def test_many_clients_concurrent_rounds(self, seed):
        rng = random.Random(seed)
        emu = ABDEmulation(n=7, f=3, scheduler=RandomScheduler(seed))
        clients = [emu.add_client() for _ in range(6)]
        sequence = 0
        for round_index in range(4):
            participants = rng.sample(clients, rng.randint(2, 5))
            for client in participants:
                if rng.random() < 0.6:
                    client.enqueue("write", f"s{seed}-v{sequence}")
                    sequence += 1
                else:
                    client.enqueue("read")
            assert emu.system.run_to_quiescence(max_steps=1_000_000).satisfied
        if round_index == 1:
            emu.kernel.crash_server(ServerId(rng.randrange(7)))
        assert is_register_history_atomic(emu.history)
