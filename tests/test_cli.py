"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Engine-routed commands cache under ./.repro_cache by default; keep
    that (and any other relative writes) out of the repository."""
    monkeypatch.chdir(tmp_path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["bounds"])
        assert (args.k, args.n, args.f) == (3, 7, 2)

    def test_engine_flag_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.refresh is False
        assert args.cache_dir == ".repro_cache"

    def test_seed_flag_on_subcommands(self):
        assert build_parser().parse_args(["sweep", "--seed", "7"]).seed == 7
        assert build_parser().parse_args(["lemma1", "--seed", "7"]).seed == 7
        assert (
            build_parser().parse_args(["experiment", "T1", "--seed", "7"]).seed
            == 7
        )
        assert build_parser().parse_args(["demo"]).seed == 0


class TestCommands:
    def test_bounds(self, capsys):
        assert main(["bounds", "-k", "4", "-n", "7", "-f", "2"]) == 0
        out = capsys.readouterr().out
        assert "max-register" in out and "register" in out
        assert "14" in out  # the register bound at these parameters

    def test_layout(self, capsys):
        assert main(["layout", "-k", "5", "-n", "6", "-f", "2"]) == 0
        out = capsys.readouterr().out
        assert "total=25" in out
        assert "s5:" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "-k", "2", "-f", "1"]) == 0
        out = capsys.readouterr().out
        assert "lower" in out and "upper" in out

    def test_lemma1(self, capsys):
        assert main(["lemma1", "-k", "2", "-n", "5", "-f", "2"]) == 0
        out = capsys.readouterr().out
        assert "all Lemma 1 claims hold" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "hello, fault tolerance" in out

    def test_ablate(self, capsys):
        assert main(["ablate"]) == 0
        out = capsys.readouterr().out
        assert "WS-Safety VIOLATED" in out
        assert "SAFE" in out

    def test_theorem5(self, capsys):
        assert main(["theorem5", "-f", "1"]) == 0
        out = capsys.readouterr().out
        assert "split-brain" in out
        assert "3 servers" in out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "TH7" in out

    def test_experiment_run(self, capsys):
        assert main(["experiment", "TH2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out

    def test_experiment_unknown(self, capsys):
        # UnknownExperiment carries its own exit code (see exit_code_for)
        assert main(["experiment", "NOPE"]) == 16
        assert "error:" in capsys.readouterr().err

    def test_experiment_json_export(self, capsys, tmp_path):
        target = tmp_path / "th2.json"
        assert main(["experiment", "TH2", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload[0]["experiment_id"] == "TH2"
        assert "wrote 1 experiment" in capsys.readouterr().out

    def test_invalid_parameters_reported(self, capsys):
        # BoundViolation carries its own exit code (see exit_code_for).
        assert main(["bounds", "-k", "1", "-n", "2", "-f", "1"]) == 9
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Theorem 5" in err


class TestEngineFlags:
    SWEEP = ["sweep", "-k", "2", "-f", "1"]

    def test_parallel_sweep_matches_serial(self, capsys, tmp_path):
        assert main([*self.SWEEP, "--no-cache"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(
                [*self.SWEEP, "--jobs", "2", "--cache-dir", str(tmp_path)]
            )
            == 0
        )
        assert capsys.readouterr().out == serial

    def test_second_run_served_from_cache(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path / "c")]
        assert main([*self.SWEEP, *cache]) == 0
        capsys.readouterr()
        assert main([*self.SWEEP, *cache]) == 0
        captured = capsys.readouterr()
        summary = [
            line
            for line in captured.err.splitlines()
            if line.startswith("engine:")
        ][-1]
        assert "misses=0" in summary and "steps=0" in summary

    def test_no_cache_writes_nothing(self, tmp_path):
        target = tmp_path / "never"
        assert main([*self.SWEEP, "--no-cache", "--cache-dir", str(target)]) == 0
        assert not target.exists()

    def test_refresh_recomputes(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path / "c")]
        argv = ["experiment", "T1", *cache]  # T1 actually simulates
        assert main(argv) == 0
        capsys.readouterr()
        assert main([*argv, "--refresh"]) == 0
        summary = [
            line
            for line in capsys.readouterr().err.splitlines()
            if line.startswith("engine:")
        ][-1]
        assert "hits=0" in summary and "steps=0" not in summary

    def test_experiment_jobs_and_cache_summary(self, capsys, tmp_path):
        cache = ["--cache-dir", str(tmp_path / "c")]
        argv = ["experiment", "table1_sweep", "--jobs", "4", *cache]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "engine:" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert second.out == first.out  # tables byte-identical from cache
        assert "misses=0" in second.err and "steps=0" in second.err

    def test_seed_recorded_in_json_export(self, capsys, tmp_path):
        target = tmp_path / "t1.json"
        argv = [
            "experiment", "T1", "--seed", "3", "--no-cache",
            "--json", str(target),
        ]
        assert main(argv) == 0
        payload = json.loads(target.read_text())
        assert payload[0]["seed"] == 3

    def test_seeded_lemma1_and_demo(self, capsys):
        assert main(["lemma1", "-k", "2", "-n", "5", "-f", "2",
                     "--seed", "1"]) == 0
        assert "all Lemma 1 claims hold" in capsys.readouterr().out
        assert main(["demo", "--seed", "2"]) == 0
        assert "hello, fault tolerance" in capsys.readouterr().out
