"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["bounds"])
        assert (args.k, args.n, args.f) == (3, 7, 2)


class TestCommands:
    def test_bounds(self, capsys):
        assert main(["bounds", "-k", "4", "-n", "7", "-f", "2"]) == 0
        out = capsys.readouterr().out
        assert "max-register" in out and "register" in out
        assert "14" in out  # the register bound at these parameters

    def test_layout(self, capsys):
        assert main(["layout", "-k", "5", "-n", "6", "-f", "2"]) == 0
        out = capsys.readouterr().out
        assert "total=25" in out
        assert "s5:" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "-k", "2", "-f", "1"]) == 0
        out = capsys.readouterr().out
        assert "lower" in out and "upper" in out

    def test_lemma1(self, capsys):
        assert main(["lemma1", "-k", "2", "-n", "5", "-f", "2"]) == 0
        out = capsys.readouterr().out
        assert "all Lemma 1 claims hold" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "hello, fault tolerance" in out

    def test_ablate(self, capsys):
        assert main(["ablate"]) == 0
        out = capsys.readouterr().out
        assert "WS-Safety VIOLATED" in out
        assert "SAFE" in out

    def test_theorem5(self, capsys):
        assert main(["theorem5", "-f", "1"]) == 0
        out = capsys.readouterr().out
        assert "split-brain" in out
        assert "3 servers" in out

    def test_experiment_list(self, capsys):
        assert main(["experiment", "--list"]) == 0
        out = capsys.readouterr().out
        assert "T1" in out and "TH7" in out

    def test_experiment_run(self, capsys):
        assert main(["experiment", "TH2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 2" in out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "NOPE"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_experiment_json_export(self, capsys, tmp_path):
        target = tmp_path / "th2.json"
        assert main(["experiment", "TH2", "--json", str(target)]) == 0
        import json

        payload = json.loads(target.read_text())
        assert payload[0]["experiment_id"] == "TH2"
        assert "wrote 1 experiment" in capsys.readouterr().out

    def test_invalid_parameters_reported(self, capsys):
        assert main(["bounds", "-k", "1", "-n", "2", "-f", "1"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
