"""Fingerprints and the baseline lifecycle.

A fingerprint hashes the rule id, the package-relative path and the
normalized source line — not the line number — so baseline entries
survive edits that merely shift code around, and go stale exactly when
the flagged line itself changes or disappears.
"""

import json
import textwrap

import pytest

from repro.lint import Baseline, lint_paths
from repro.lint.baseline import BASELINE_VERSION, PLACEHOLDER_REASON

LEAK = """
def leaky(kernel, meter):
    kernel.add_listener(meter)
    kernel.run(max_steps=100)
"""


def lint_fixture(tmp_path, source, baseline=None):
    path = tmp_path / "fixture.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([path], baseline=baseline, rule_ids=["R005"])


class TestFingerprints:
    def test_stable_across_line_shifts(self, tmp_path):
        before = lint_fixture(tmp_path, LEAK)
        after = lint_fixture(tmp_path, "# a new comment\n\n\n" + LEAK)
        (first,) = before.active
        (second,) = after.active
        assert first.line != second.line
        assert first.fingerprint == second.fingerprint

    def test_changes_when_line_changes(self, tmp_path):
        before = lint_fixture(tmp_path, LEAK)
        after = lint_fixture(
            tmp_path, LEAK.replace("(meter)", "(other_meter)")
        )
        assert before.active[0].fingerprint != after.active[0].fingerprint

    def test_identical_lines_get_distinct_fingerprints(self, tmp_path):
        result = lint_fixture(
            tmp_path,
            """
            def one(kernel, meter):
                kernel.add_listener(meter)

            def two(kernel, meter):
                kernel.add_listener(meter)
            """,
        )
        assert len(result.active) == 2
        fingerprints = {item.fingerprint for item in result.active}
        assert len(fingerprints) == 2


class TestBaseline:
    def test_partition_baselines_known_findings(self, tmp_path):
        first = lint_fixture(tmp_path, LEAK)
        baseline = Baseline.from_findings(first.active)
        second = lint_fixture(tmp_path, LEAK, baseline=baseline)
        assert second.active == []
        assert len(second.baselined) == 1
        assert second.stale_baseline == []
        assert second.ok

    def test_baseline_survives_unrelated_edits(self, tmp_path):
        baseline = Baseline.from_findings(lint_fixture(tmp_path, LEAK).active)
        shifted = lint_fixture(
            tmp_path, "import sys  # unrelated\n" + LEAK, baseline=baseline
        )
        assert shifted.active == []
        assert len(shifted.baselined) == 1

    def test_fixed_finding_goes_stale(self, tmp_path):
        baseline = Baseline.from_findings(lint_fixture(tmp_path, LEAK).active)
        fixed = lint_fixture(
            tmp_path,
            """
            def tidy(kernel, meter):
                kernel.add_listener(meter)
                try:
                    kernel.run(max_steps=100)
                finally:
                    kernel.remove_listener(meter)
            """,
            baseline=baseline,
        )
        assert fixed.active == []
        assert fixed.baselined == []
        assert len(fixed.stale_baseline) == 1
        assert fixed.stale_baseline[0]["rule"] == "R005"

    def test_save_load_round_trip(self, tmp_path):
        baseline = Baseline.from_findings(lint_fixture(tmp_path, LEAK).active)
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert [e.to_dict() for e in loaded.entries] == [
            e.to_dict() for e in baseline.entries
        ]
        assert loaded.entries[0].reason == PLACEHOLDER_REASON

    def test_unsupported_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(
            json.dumps({"version": BASELINE_VERSION + 1, "entries": []}),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(target)
