"""Fixture tests for the dataflow-aware rules R007-R010.

Same contract as test_rules.py: every rule gets (a) fixtures it fires
on, (b) a fixture a ``# repro-lint: disable=`` directive silences, and
(c) true-negative fixtures it must stay quiet on.  The R009 section
includes the regression fixture reproducing the PR 4 ``FaultPlan.fate``
str-hash bug — the shape that silently broke cross-process replay and
motivated the rule.
"""

from tests.lint.test_rules import lint_source, rules_fired

# -- R007: event-loop discipline ---------------------------------------------


class TestR007:
    def test_time_sleep_in_async_def_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            async def serve():
                time.sleep(0.1)
            """,
            "R007",
        )
        assert rules_fired(result) == ["R007"]
        assert "time.sleep()" in result.active[0].message

    def test_sync_socket_and_file_io_fire(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import socket

            async def dial(host, port):
                conn = socket.create_connection((host, port))
                with open("log.txt") as fh:
                    return fh.read(), conn
            """,
            "R007",
        )
        assert rules_fired(result) == ["R007", "R007"]

    def test_run_to_quiescence_in_async_def_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            async def drive(sim):
                sim.run_to_quiescence()
            """,
            "R007",
        )
        assert rules_fired(result) == ["R007"]

    def test_print_default_parameter_fires(self, tmp_path):
        # the asyncio-transport closure shape: a nested async def calling
        # a callback parameter of the enclosing sync function whose
        # default is print — resolved through the enclosing scope
        result = lint_source(
            tmp_path,
            """
            def run_server(announce=print):
                async def _serve():
                    announce("listening")
                return _serve
            """,
            "R007",
        )
        assert rules_fired(result) == ["R007"]
        assert "announce() (= print)" in result.active[0].message

    def test_own_parameter_default_print_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            async def serve(announce=print):
                announce("up")
            """,
            "R007",
        )
        assert rules_fired(result) == ["R007"]

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            async def serve():
                # repro-lint: disable=R007 startup only, loop not yet serving
                time.sleep(0.1)
            """,
            "R007",
        )
        assert rules_fired(result) == []
        assert len(result.suppressed) == 1

    def test_asyncio_sleep_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            async def serve():
                await asyncio.sleep(0.1)
            """,
            "R007",
        )
        assert rules_fired(result) == []

    def test_sync_def_is_out_of_scope(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            def serve():
                time.sleep(0.1)
                print("done")
            """,
            "R007",
        )
        assert rules_fired(result) == []

    def test_callback_rebound_to_async_safe_value_is_clean(self, tmp_path):
        # a name locally bound to something non-blocking must not fall
        # through to the enclosing-scope default
        result = lint_source(
            tmp_path,
            """
            def run_server(announce=print):
                async def _serve(sink):
                    announce = sink.emit
                    announce("listening")
                return _serve
            """,
            "R007",
        )
        assert rules_fired(result) == []

    def test_blocking_callable_passed_not_called_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            async def serve(loop):
                await loop.run_in_executor(None, time.sleep, 0.1)
            """,
            "R007",
        )
        assert rules_fired(result) == []


# -- R008: fire-and-forget coroutines/tasks ----------------------------------


class TestR008:
    def test_discarded_ensure_future_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            def kick(coro):
                asyncio.ensure_future(coro)
            """,
            "R008",
        )
        assert rules_fired(result) == ["R008"]
        assert "fire-and-forget" in result.active[0].message

    def test_discarded_create_task_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            async def kick(loop, coro):
                loop.create_task(coro)
            """,
            "R008",
        )
        assert rules_fired(result) == ["R008"]

    def test_task_assigned_but_never_read_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            async def kick(coro):
                task = asyncio.create_task(coro)
            """,
            "R008",
        )
        assert rules_fired(result) == ["R008"]
        assert "never read" in result.active[0].message

    def test_unawaited_local_coroutine_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            async def work():
                return 1

            async def caller():
                work()
            """,
            "R008",
        )
        assert rules_fired(result) == ["R008"]
        assert "never awaited" in result.active[0].message

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            def kick(coro):
                # repro-lint: disable=R008 daemon task, lifetime of process
                asyncio.ensure_future(coro)
            """,
            "R008",
        )
        assert rules_fired(result) == []
        assert len(result.suppressed) == 1

    def test_task_with_done_callback_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            async def kick(coro, on_done):
                task = asyncio.create_task(coro)
                task.add_done_callback(on_done)
            """,
            "R008",
        )
        assert rules_fired(result) == []

    def test_awaited_task_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            async def kick(coro):
                task = asyncio.ensure_future(coro)
                await task
            """,
            "R008",
        )
        assert rules_fired(result) == []

    def test_task_retained_in_collection_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import asyncio

            async def kick(coro, registry):
                task = asyncio.create_task(coro)
                registry.add(task)
            """,
            "R008",
        )
        assert rules_fired(result) == []

    def test_awaited_coroutine_call_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            async def work():
                return 1

            async def caller():
                await work()
            """,
            "R008",
        )
        assert rules_fired(result) == []


# -- R009: replay-determinism taint ------------------------------------------


class TestR009:
    def test_pr4_fate_str_hash_regression(self, tmp_path):
        # the PR 4 bug, reduced: FaultPlan.fate seeded its per-decision
        # RNG from hash((...components...)) where one component was a
        # str leg name — salted per process, so coordinator and replica
        # shells drew different fates and replay silently diverged.
        result = lint_source(
            tmp_path,
            """
            import random

            class FaultPlan:
                def fate(self, seed, op_id, server_index):
                    leg = "request"
                    rng = random.Random(
                        hash((seed, op_id, leg, server_index))
                    )
                    return rng.random() < 0.5
            """,
            "R009",
        )
        assert rules_fired(result) == ["R009"]
        assert "salted per process" in result.active[0].message

    def test_direct_str_hash_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def cache_slot(name: object) -> int:
                return hash("prefix") ^ 17
            """,
            "R009",
        )
        assert rules_fired(result) == ["R009"]

    def test_hash_through_assignment_chain_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            def fate(seed):
                key = "leg"
                token = key
                rng = random.Random(hash(token) + seed)
                return rng.random()
            """,
            "R009",
        )
        assert rules_fired(result) == ["R009"]

    def test_id_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def slot(obj):
                return id(obj) % 64
            """,
            "R009",
        )
        assert rules_fired(result) == ["R009"]
        assert "process-local" in result.active[0].message

    def test_tainted_value_reaching_sink_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            def pick(key):
                salted = hash(str(key))
                rng = random.Random(salted)
                return rng.random()
            """,
            "R009",
        )
        # the hash() itself plus the tainted flow into Random(...)
        assert rules_fired(result) == ["R009", "R009"]

    def test_set_iteration_into_wire_frame_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def frame(codec, servers):
                pending = set(servers)
                order = []
                for server in pending:
                    order = order + [server]
                return codec.encode_frame(order)
            """,
            "R009",
        )
        assert any(
            "unsorted set/dict iteration" in item.message
            for item in result.active
        )

    def test_float_accumulation_into_fate_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def decide(plan, weights):
                total = 0.0
                for w in weights:
                    total += w
                return plan.fate(total)
            """,
            "R009",
        )
        assert any(
            "float accumulation" in item.message for item in result.active
        )

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def display_bucket(name):
                # repro-lint: disable=R009 display-only, never replayed
                return hash(str(name)) % 8
            """,
            "R009",
        )
        assert rules_fired(result) == []
        assert len(result.suppressed) == 1

    def test_all_int_tuple_hash_is_clean(self, tmp_path):
        # the *fixed* FaultPlan.fate shape: every component an int
        result = lint_source(
            tmp_path,
            """
            import random

            def fate(seed, op_id, leg, server_index):
                rng = random.Random(hash((seed, op_id, leg, server_index)))
                return rng.random()
            """,
            "R009",
        )
        assert rules_fired(result) == []

    def test_sorted_iteration_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def frame(codec, servers):
                order = []
                for server in sorted(set(servers)):
                    order = order + [server]
                return codec.encode_frame(order)
            """,
            "R009",
        )
        assert rules_fired(result) == []

    def test_cleansed_reassignment_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            def fate(seed):
                token = hash(str(seed))
                token = int(seed)
                rng = random.Random(token)
                return rng.random()
            """,
            "R009",
        )
        # the direct hash(str(...)) still fires; the sink must not,
        # because the clean reassignment killed the taint
        assert rules_fired(result) == ["R009"]
        assert "flows into" not in result.active[0].message

    def test_out_of_scope_package_dir_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def bucket(name):
                return hash(str(name)) % 8
            """,
            "R009",
            name="repro/exec/fixture.py",
        )
        assert rules_fired(result) == []


# -- R010: typed-error discipline --------------------------------------------


class TestR010:
    def test_bare_valueerror_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def validate(k):
                if k <= 0:
                    raise ValueError(f"k must be positive, got {k}")
            """,
            "R010",
        )
        assert rules_fired(result) == ["R010"]
        assert "--explain R010" in result.active[0].message

    def test_bare_runtimeerror_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def require_open(session):
                if session.closed:
                    raise RuntimeError("session is closed")
            """,
            "R010",
        )
        assert rules_fired(result) == ["R010"]

    def test_raise_without_call_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def fail():
                raise ValueError
            """,
            "R010",
        )
        assert rules_fired(result) == ["R010"]

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def validate(k):
                if k <= 0:
                    # repro-lint: disable=R010 stdlib-compat surface
                    raise ValueError(f"k must be positive, got {k}")
            """,
            "R010",
        )
        assert rules_fired(result) == []
        assert len(result.suppressed) == 1

    def test_typed_error_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from repro.errors import InvalidConfig

            def validate(k):
                if k <= 0:
                    raise InvalidConfig(f"k must be positive, got {k}")
            """,
            "R010",
        )
        assert rules_fired(result) == []

    def test_reraise_and_other_builtins_are_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def passthrough():
                try:
                    risky()
                except ValueError:
                    raise
                raise NotImplementedError("subclass responsibility")
            """,
            "R010",
        )
        assert rules_fired(result) == []

    def test_errors_module_is_exempt(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            class ReproError(Exception):
                def __init_subclass__(cls, **kwargs):
                    if not cls.__doc__:
                        raise ValueError("error classes need docstrings")
            """,
            "R010",
            name="repro/errors.py",
        )
        assert rules_fired(result) == []


# -- --explain text -----------------------------------------------------------


class TestExplain:
    def test_explain_r010_names_the_classes(self):
        from repro.lint.report import render_explain

        text = render_explain("R010")
        assert "InvalidConfig" in text
        assert "QuorumUnavailable" in text

    def test_explain_unknown_rule(self):
        from repro.lint.report import render_explain

        assert "unknown rule" in render_explain("R999")

    def test_every_v2_rule_has_explain(self):
        from repro.lint.engine import RULES
        from repro.lint.report import render_explain

        import repro.lint.rules_flow  # noqa: F401

        for rule_id in ("R007", "R008", "R009", "R010"):
            assert rule_id in RULES
            assert len(render_explain(rule_id)) > 80
