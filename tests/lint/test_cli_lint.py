"""The ``repro lint`` CLI: exit codes, JSON output, baseline flags."""

import json
import textwrap

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _run_from_tmp(tmp_path, monkeypatch):
    # The default baseline path is CWD-relative; run each test from its
    # temp dir so the repository's own lint-baseline.json stays out of
    # the picture (its entries are all stale for a one-file fixture run).
    monkeypatch.chdir(tmp_path)

CLEAN = """
def add(a, b):
    return a + b
"""

DIRTY = """
import random

value = random.random()
"""


def write(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, CLEAN)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_explicit_baseline_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, CLEAN)
        code = main(
            ["lint", str(path), "--baseline", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "baseline file not found" in capsys.readouterr().err


class TestOutput:
    def test_json_to_stdout(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        assert main(["lint", str(path), "--json", "-"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["active"] == 1
        assert payload["findings"][0]["rule"] == "R001"
        assert payload["findings"][0]["fingerprint"]

    def test_json_to_file(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        report = tmp_path / "report.json"
        assert main(["lint", str(path), "--json", str(report)]) == 1
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["summary"]["ok"] is False
        capsys.readouterr()  # drain the text report

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert rule_id in out

    def test_verbose_shows_suppressed(self, tmp_path, capsys):
        write(
            tmp_path,
            """
            import random

            value = random.random()  # repro-lint: disable=R001 fixture
            """,
        )
        assert main(["lint", str(tmp_path / "fixture.py"), "--verbose"]) == 0
        assert "[suppressed]" in capsys.readouterr().out


class TestBaselineFlags:
    def test_write_then_lint_against_baseline(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(path),
                    "--write-baseline",
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        assert baseline.is_file()
        assert (
            main(["lint", str(path), "--baseline", str(baseline)]) == 0
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_stale_baseline_fails(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main(
            ["lint", str(path), "--write-baseline", "--baseline", str(baseline)]
        )
        write(tmp_path, CLEAN)  # the finding is fixed; the entry rots
        assert (
            main(["lint", str(path), "--baseline", str(baseline)]) == 1
        )
        assert "stale baseline entry" in capsys.readouterr().out

    def test_no_baseline_ignores_file(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main(
            ["lint", str(path), "--write-baseline", "--baseline", str(baseline)]
        )
        code = main(
            [
                "lint",
                str(path),
                "--no-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        capsys.readouterr()

    def test_prune_baseline_drops_stale_entries(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main(
            ["lint", str(path), "--write-baseline", "--baseline", str(baseline)]
        )
        write(tmp_path, CLEAN)  # fix the finding; the entry goes stale
        code = main(
            [
                "lint",
                str(path),
                "--baseline",
                str(baseline),
                "--prune-baseline",
            ]
        )
        assert code == 0
        assert "pruned 1 stale" in capsys.readouterr().err
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["entries"] == []
        # next run is clean against the pruned baseline
        assert main(["lint", str(path), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_prune_baseline_keeps_live_entries(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main(
            ["lint", str(path), "--write-baseline", "--baseline", str(baseline)]
        )
        code = main(
            [
                "lint",
                str(path),
                "--baseline",
                str(baseline),
                "--prune-baseline",
            ]
        )
        assert code == 0
        assert "pruned 0 stale" in capsys.readouterr().err
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert len(payload["entries"]) == 1

    def test_prune_baseline_without_baseline_exits_two(
        self, tmp_path, capsys
    ):
        path = write(tmp_path, CLEAN)
        code = main(["lint", str(path), "--no-baseline", "--prune-baseline"])
        assert code == 2
        assert "needs a baseline" in capsys.readouterr().err


class TestSarifFormat:
    def test_sarif_to_stdout_validates(self, tmp_path, capsys):
        from repro.lint import validate_sarif

        path = write(tmp_path, DIRTY)
        assert main(["lint", str(path), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert validate_sarif(payload) == []
        assert payload["runs"][0]["results"][0]["ruleId"] == "R001"

    def test_sarif_clean_run_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, CLEAN)
        assert main(["lint", str(path), "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []

    def test_format_json_renders_findings_payload(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        assert main(["lint", str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["active"] == 1


class TestExplainFlag:
    def test_explain_r010(self, capsys):
        assert main(["lint", "--explain", "R010"]) == 0
        out = capsys.readouterr().out
        assert "InvalidConfig" in out
        assert "exit code" in out

    def test_explain_unknown_rule(self, capsys):
        assert main(["lint", "--explain", "R999"]) == 0
        assert "unknown rule" in capsys.readouterr().out


class TestJobsFlag:
    def test_parallel_matches_sequential(self, tmp_path, capsys):
        for index in range(4):
            write(tmp_path, DIRTY, name=f"mod_{index}.py")
        write(tmp_path, CLEAN, name="clean.py")
        assert main(["lint", str(tmp_path)]) == 1
        sequential = capsys.readouterr().out
        assert main(["lint", str(tmp_path), "--jobs", "3"]) == 1
        parallel = capsys.readouterr().out
        assert parallel == sequential
        assert sequential.count("R001") == 4


class TestChangedFlag:
    def _git(self, tmp_path, *argv):
        import subprocess

        subprocess.run(
            ["git", *argv],
            cwd=tmp_path,
            check=True,
            capture_output=True,
            env={
                "GIT_AUTHOR_NAME": "t",
                "GIT_AUTHOR_EMAIL": "t@example.invalid",
                "GIT_COMMITTER_NAME": "t",
                "GIT_COMMITTER_EMAIL": "t@example.invalid",
                "PATH": __import__("os").environ["PATH"],
                "HOME": str(tmp_path),
            },
        )

    def test_changed_lints_only_dirty_files(self, tmp_path, capsys):
        committed = write(tmp_path, DIRTY, name="committed.py")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "seed")
        write(tmp_path, DIRTY, name="fresh.py")
        assert main(["lint", str(tmp_path), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "committed.py" not in out
        assert committed.is_file()

    def test_changed_with_nothing_dirty_is_clean(self, tmp_path, capsys):
        write(tmp_path, DIRTY, name="committed.py")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", ".")
        self._git(tmp_path, "commit", "-qm", "seed")
        assert main(["lint", str(tmp_path), "--changed"]) == 0
        assert "no changed files" in capsys.readouterr().out

    def test_changed_outside_git_falls_back(self, tmp_path, capsys):
        write(tmp_path, DIRTY)
        code = main(["lint", str(tmp_path / "fixture.py"), "--changed"])
        captured = capsys.readouterr()
        if "needs a git work tree" in captured.err:
            assert code == 1  # fell back to a full run
        else:
            # the temp dir sits inside some enclosing repo: the fixture
            # is untracked there, so it is linted as changed
            assert code in (0, 1)
