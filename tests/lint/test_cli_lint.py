"""The ``repro lint`` CLI: exit codes, JSON output, baseline flags."""

import json
import textwrap

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _run_from_tmp(tmp_path, monkeypatch):
    # The default baseline path is CWD-relative; run each test from its
    # temp dir so the repository's own lint-baseline.json stays out of
    # the picture (its entries are all stale for a one-file fixture run).
    monkeypatch.chdir(tmp_path)

CLEAN = """
def add(a, b):
    return a + b
"""

DIRTY = """
import random

value = random.random()
"""


def write(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, CLEAN)
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "R001" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_explicit_baseline_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, CLEAN)
        code = main(
            ["lint", str(path), "--baseline", str(tmp_path / "absent.json")]
        )
        assert code == 2
        assert "baseline file not found" in capsys.readouterr().err


class TestOutput:
    def test_json_to_stdout(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        assert main(["lint", str(path), "--json", "-"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["active"] == 1
        assert payload["findings"][0]["rule"] == "R001"
        assert payload["findings"][0]["fingerprint"]

    def test_json_to_file(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        report = tmp_path / "report.json"
        assert main(["lint", str(path), "--json", str(report)]) == 1
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["summary"]["ok"] is False
        capsys.readouterr()  # drain the text report

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005", "R006"):
            assert rule_id in out

    def test_verbose_shows_suppressed(self, tmp_path, capsys):
        write(
            tmp_path,
            """
            import random

            value = random.random()  # repro-lint: disable=R001 fixture
            """,
        )
        assert main(["lint", str(tmp_path / "fixture.py"), "--verbose"]) == 0
        assert "[suppressed]" in capsys.readouterr().out


class TestBaselineFlags:
    def test_write_then_lint_against_baseline(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(path),
                    "--write-baseline",
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        assert baseline.is_file()
        assert (
            main(["lint", str(path), "--baseline", str(baseline)]) == 0
        )
        assert "1 baselined" in capsys.readouterr().out

    def test_stale_baseline_fails(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main(
            ["lint", str(path), "--write-baseline", "--baseline", str(baseline)]
        )
        write(tmp_path, CLEAN)  # the finding is fixed; the entry rots
        assert (
            main(["lint", str(path), "--baseline", str(baseline)]) == 1
        )
        assert "stale baseline entry" in capsys.readouterr().out

    def test_no_baseline_ignores_file(self, tmp_path, capsys):
        path = write(tmp_path, DIRTY)
        baseline = tmp_path / "baseline.json"
        main(
            ["lint", str(path), "--write-baseline", "--baseline", str(baseline)]
        )
        code = main(
            [
                "lint",
                str(path),
                "--no-baseline",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        capsys.readouterr()
