"""SARIF 2.1.0 rendering and validation (``--format sarif``)."""

import json
import textwrap

from repro.lint import (
    Baseline,
    lint_paths,
    render_sarif,
    sarif_payload,
    validate_sarif,
)
from repro.lint.sarif import SARIF_VERSION

DIRTY = """
import random

value = random.random()
"""

SUPPRESSED = """
import random

value = random.random()  # repro-lint: disable=R001 fixture reason
"""


def _lint(tmp_path, source, baseline=None, name="fixture.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([path], baseline=baseline)


class TestRendering:
    def test_active_finding_becomes_result(self, tmp_path):
        result = _lint(tmp_path, DIRTY)
        payload = json.loads(render_sarif(result))
        assert payload["version"] == SARIF_VERSION
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        (item,) = run["results"]
        assert item["ruleId"] == "R001"
        assert item["level"] == "error"
        assert "suppressions" not in item
        region = item["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1

    def test_rule_catalog_covers_all_rules(self, tmp_path):
        result = _lint(tmp_path, DIRTY)
        payload = sarif_payload(result)
        rule_ids = {
            rule["id"]
            for rule in payload["runs"][0]["tool"]["driver"]["rules"]
        }
        for rule_id in (
            "R001", "R002", "R003", "R004", "R005",
            "R006", "R007", "R008", "R009", "R010",
        ):
            assert rule_id in rule_ids

    def test_rule_index_points_into_catalog(self, tmp_path):
        result = _lint(tmp_path, DIRTY)
        payload = sarif_payload(result)
        run = payload["runs"][0]
        (item,) = run["results"]
        indexed = run["tool"]["driver"]["rules"][item["ruleIndex"]]
        assert indexed["id"] == item["ruleId"]

    def test_fingerprint_carried(self, tmp_path):
        result = _lint(tmp_path, DIRTY)
        payload = sarif_payload(result)
        (item,) = payload["runs"][0]["results"]
        assert item["partialFingerprints"]["reproLint/v1"]
        assert (
            item["partialFingerprints"]["reproLint/v1"]
            == result.active[0].fingerprint
        )

    def test_inline_suppression_marked_in_source(self, tmp_path):
        result = _lint(tmp_path, SUPPRESSED)
        payload = sarif_payload(result)
        (item,) = payload["runs"][0]["results"]
        assert item["suppressions"] == [{"kind": "inSource"}]

    def test_baselined_marked_external_with_justification(self, tmp_path):
        first = _lint(tmp_path, DIRTY)
        baseline = Baseline.from_findings(first.active)
        baseline.entries[0].reason = "legacy fixture, tracked in #42"
        result = _lint(tmp_path, DIRTY, baseline=baseline)
        payload = sarif_payload(
            result, baseline_reasons=baseline.reasons()
        )
        (item,) = payload["runs"][0]["results"]
        assert item["suppressions"][0]["kind"] == "external"
        assert (
            item["suppressions"][0]["justification"]
            == "legacy fixture, tracked in #42"
        )


class TestValidation:
    def test_rendered_output_validates(self, tmp_path):
        result = _lint(tmp_path, DIRTY)
        payload = json.loads(render_sarif(result))
        assert validate_sarif(payload) == []

    def test_empty_run_validates(self, tmp_path):
        result = _lint(tmp_path, "x = 1\n")
        assert validate_sarif(sarif_payload(result)) == []

    def test_bad_version_rejected(self, tmp_path):
        payload = sarif_payload(_lint(tmp_path, DIRTY))
        payload["version"] = "1.0.0"
        assert validate_sarif(payload)

    def test_missing_message_rejected(self, tmp_path):
        payload = sarif_payload(_lint(tmp_path, DIRTY))
        del payload["runs"][0]["results"][0]["message"]
        assert validate_sarif(payload)

    def test_unknown_rule_id_rejected(self, tmp_path):
        payload = sarif_payload(_lint(tmp_path, DIRTY))
        payload["runs"][0]["results"][0]["ruleId"] = "R999"
        assert any(
            "not in driver.rules" in message
            for message in validate_sarif(payload)
        )

    def test_structural_fallback_matches_jsonschema(self, tmp_path):
        from repro.lint.sarif import _structural_errors

        good = sarif_payload(_lint(tmp_path, DIRTY))
        assert _structural_errors(good) == []
        bad = sarif_payload(_lint(tmp_path, DIRTY))
        bad["version"] = "1.0.0"
        del bad["runs"][0]["results"][0]["message"]
        assert len(_structural_errors(bad)) >= 2
