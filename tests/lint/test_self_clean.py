"""The repository must pass its own linter.

``repro lint src/`` with the checked-in baseline is a CI gate; this test
is the same gate runnable locally, plus the hygiene conditions that keep
the gate honest: no reasonless suppression directives, no placeholder
reasons in the baseline, and no baseline rot.
"""

from pathlib import Path

from repro.lint import Baseline, collect_files, lint_paths, load_module
from repro.lint.baseline import PLACEHOLDER_REASON

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_src_is_lint_clean():
    baseline = Baseline.load(BASELINE) if BASELINE.is_file() else None
    result = lint_paths([SRC], baseline=baseline)
    assert result.files > 0
    rendered = "\n".join(item.render() for item in result.active)
    assert result.active == [], f"lint findings in src/:\n{rendered}"
    assert result.stale_baseline == [], (
        "stale baseline entries (fixed findings still grandfathered):"
        f" {result.stale_baseline}"
    )


def test_every_suppression_has_a_reason():
    offenders = []
    for path in collect_files([SRC]):
        module = load_module(path)
        for line in module.suppressions.reasonless():
            offenders.append(f"{path}:{line}")
    assert offenders == [], (
        "repro-lint directives without a reason string: " + ", ".join(offenders)
    )


def test_baseline_reasons_are_real():
    if not BASELINE.is_file():
        return
    baseline = Baseline.load(BASELINE)
    assert baseline.entries, "an empty baseline file should be deleted"
    for entry in baseline.entries:
        assert entry.reason, f"baseline entry {entry.fingerprint} lacks a reason"
        assert entry.reason != PLACEHOLDER_REASON, (
            f"baseline entry {entry.fingerprint} still carries the"
            " --write-baseline placeholder; justify or fix it"
        )


def test_parse_clean():
    for path in collect_files([SRC]):
        assert load_module(path).tree is not None, f"{path} does not parse"
