"""Fixture tests for the built-in rules R001-R006.

Every rule gets (a) a fixture it fires on, (b) a fixture a suppression
directive silences, and (c) negative fixtures it must stay quiet on.
Fixture files live in pytest temp dirs; files outside the ``repro``
package count as in-scope for every rule (see
``ModuleInfo.in_package_dirs``), so the fixtures need not replicate the
package layout — except where a test exercises the path scoping itself.
"""

import textwrap

from repro.lint import lint_paths


def lint_source(tmp_path, source, rule, name="fixture.py"):
    """Lint one fixture file with a single rule."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([path], rule_ids=[rule])


def rules_fired(result):
    return [item.rule for item in result.active]


# -- R001: unseeded randomness ----------------------------------------------


class TestR001:
    def test_module_level_rng_call_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            def pick(items):
                return items[int(random.random() * len(items))]
            """,
            "R001",
        )
        assert rules_fired(result) == ["R001"]
        assert "shared" in result.active[0].message

    def test_seedless_random_instance_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            rng = random.Random()
            """,
            "R001",
        )
        assert rules_fired(result) == ["R001"]

    def test_from_import_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from random import choice
            """,
            "R001",
        )
        assert rules_fired(result) == ["R001"]

    def test_seeded_instance_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            def scheduler(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
            "R001",
        )
        assert result.active == []

    def test_from_import_random_class_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from random import Random

            rng = Random(7)
            """,
            "R001",
        )
        assert result.active == []

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            value = random.random()  # repro-lint: disable=R001 fixture
            """,
            "R001",
        )
        assert result.active == []
        assert rules_fired_suppressed(result) == ["R001"]

    def test_suppression_on_line_above(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            # repro-lint: disable=R001 fixture
            value = random.random()
            """,
            "R001",
        )
        assert result.active == []
        assert len(result.suppressed) == 1

    def test_out_of_scope_package_dir_is_skipped(self, tmp_path):
        # In-package files outside sim/core/consistency are not covered.
        result = lint_source(
            tmp_path,
            """
            import random

            value = random.random()
            """,
            "R001",
            name="repro/analysis/fixture.py",
        )
        assert result.active == []

    def test_in_scope_package_dir_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            value = random.random()
            """,
            "R001",
            name="repro/sim/fixture.py",
        )
        assert rules_fired(result) == ["R001"]


def rules_fired_suppressed(result):
    return [item.rule for item in result.suppressed]


# -- R002: wall-clock / environment reads -----------------------------------


class TestR002:
    def test_time_time_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
            "R002",
        )
        assert rules_fired(result) == ["R002"]

    def test_os_environ_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import os

            debug = os.environ.get("DEBUG")
            """,
            "R002",
        )
        assert rules_fired(result) == ["R002"]

    def test_from_import_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            from time import perf_counter
            """,
            "R002",
        )
        assert rules_fired(result) == ["R002"]

    def test_exec_package_is_exempt(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            started = time.perf_counter()
            """,
            "R002",
            name="repro/exec/fixture.py",
        )
        assert result.active == []

    def test_cli_is_exempt(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            started = time.time()
            """,
            "R002",
            name="repro/cli.py",
        )
        assert result.active == []

    def test_asyncio_transport_is_exempt(self, tmp_path):
        # The one module that talks to a real network: its waits are
        # physical deadlines, not simulation inputs (docs/LINTING.md).
        result = lint_source(
            tmp_path,
            """
            import time

            started = time.monotonic()
            """,
            "R002",
            name="repro/net/asyncio_transport.py",
        )
        assert result.active == []

    def test_rest_of_the_transport_layer_is_not_exempt(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import time

            started = time.monotonic()
            """,
            "R002",
            name="repro/net/lossy.py",
        )
        assert rules_fired(result) == ["R002"]

    def test_simulated_time_is_clean(self, tmp_path):
        # Kernel step-time is the simulation's clock, not the wall clock.
        result = lint_source(
            tmp_path,
            """
            def horizon(kernel):
                return kernel.time
            """,
            "R002",
        )
        assert result.active == []

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import os

            seed = os.urandom(4)  # repro-lint: disable=R002 fixture
            """,
            "R002",
        )
        assert result.active == []
        assert len(result.suppressed) == 1


# -- R003: Emulation-protocol conformance -----------------------------------

_REGISTRY_PRELUDE = """
def register_algorithm(name):
    def wrap(fn):
        return fn
    return wrap
"""

_CONFORMING_CLASS = """
class GoodEmulation:
    def __init__(self):
        self.kernel = None
        self.object_map = None
        self.history = None
        self.system = None

    def add_writer(self, writer_index):
        pass

    def add_reader(self):
        pass
"""


class TestR003:
    def test_missing_surface_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + textwrap.dedent(
                """
                class PartialEmulation:
                    def __init__(self):
                        self.kernel = None

                @register_algorithm("partial")
                def build(**kwargs):
                    return PartialEmulation(**kwargs)
                """
            ),
            "R003",
        )
        assert rules_fired(result) == ["R003"]
        message = result.active[0].message
        assert "add_writer" in message and "object_map" in message
        assert "kernel" not in message.split("missing")[1]

    def test_conforming_class_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + _CONFORMING_CLASS
            + textwrap.dedent(
                """
                @register_algorithm("good")
                def build(**kwargs):
                    return GoodEmulation(**kwargs)
                """
            ),
            "R003",
        )
        assert result.active == []

    def test_surface_via_base_class_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + _CONFORMING_CLASS
            + textwrap.dedent(
                """
                class Derived(GoodEmulation):
                    pass

                @register_algorithm("derived")
                def build(**kwargs):
                    return Derived(**kwargs)
                """
            ),
            "R003",
        )
        assert result.active == []

    def test_cross_module_resolution_fires(self, tmp_path):
        (tmp_path / "emu_impl.py").write_text(
            textwrap.dedent(
                """
                class RemotePartial:
                    def __init__(self):
                        self.kernel = None
                        self.history = None
                """
            ),
            encoding="utf-8",
        )
        result = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + textwrap.dedent(
                """
                from emu_impl import RemotePartial

                @register_algorithm("remote")
                def build(**kwargs):
                    return RemotePartial(**kwargs)
                """
            ),
            "R003",
            name="registry.py",
        )
        assert rules_fired(result) == ["R003"]

    def test_unresolvable_class_is_inconclusive(self, tmp_path):
        result = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + textwrap.dedent(
                """
                from nowhere_to_be_found import MysteryEmulation

                @register_algorithm("mystery")
                def build(**kwargs):
                    return MysteryEmulation(**kwargs)
                """
            ),
            "R003",
        )
        assert result.active == []

    def test_real_registry_is_clean(self):
        # The shipped algorithm registry must satisfy its own protocol.
        import repro.core.emulation as emulation_module

        result = lint_paths([emulation_module.__file__], rule_ids=["R003"])
        assert result.active == []

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + textwrap.dedent(
                """
                class PartialEmulation:
                    def __init__(self):
                        self.kernel = None

                @register_algorithm("partial")
                def build(**kwargs):
                    # repro-lint: disable=R003 fixture
                    return PartialEmulation(**kwargs)
                """
            ),
            "R003",
        )
        assert result.active == []
        assert len(result.suppressed) == 1


# -- R004: base-object access discipline ------------------------------------


class TestR004:
    def test_mutator_call_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def sabotage(emulation, server_id):
                emulation.object_map.crash_server(server_id)
            """,
            "R004",
        )
        assert rules_fired(result) == ["R004"]
        assert "bypasses the kernel" in result.active[0].message

    def test_private_internal_access_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def peek(self):
                return self.object_map._objects
            """,
            "R004",
        )
        assert rules_fired(result) == ["R004"]

    def test_attribute_mutation_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def overwrite(self, value):
                self.object_map.table = value
            """,
            "R004",
        )
        assert rules_fired(result) == ["R004"]

    def test_subscript_mutation_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def plant(self, object_id, value):
                self.object_map.entries[object_id] = value
            """,
            "R004",
        )
        assert rules_fired(result) == ["R004"]

    def test_public_reads_are_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def covered_servers(self, cov):
                servers = self.object_map.image(cov)
                return servers & set(self.object_map.server_ids)
            """,
            "R004",
        )
        assert result.active == []

    def test_trigger_respond_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def op_write(self, ctx, value):
                op = ctx.trigger(self.register, "write", value)
                yield lambda: op in self.results
                return "ack"
            """,
            "R004",
        )
        assert result.active == []

    def test_out_of_scope_package_dir_is_skipped(self, tmp_path):
        # The simulator itself legitimately builds/mutates deployments.
        result = lint_source(
            tmp_path,
            """
            def build(self, server_id):
                self.object_map.add_server(server_id)
            """,
            "R004",
            name="repro/sim/fixture.py",
        )
        assert result.active == []

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def sabotage(emulation, server_id):
                # repro-lint: disable=R004 fixture
                emulation.object_map.crash_server(server_id)
            """,
            "R004",
        )
        assert result.active == []
        assert len(result.suppressed) == 1

    def test_transport_layer_is_in_scope_for_mutators(self, tmp_path):
        # repro/net relays messages; it must not apply effects itself.
        result = lint_source(
            tmp_path,
            """
            def pump(self, op):
                self.kernel.object_map.object(op.object_id).apply(op)
            """,
            "R004",
            name="repro/net/fixture.py",
        )
        assert rules_fired(result) == ["R004"]


class TestR004DeliverySeam:
    def test_arrive_from_protocol_code_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def op_write(self, ctx, value):
                op = ctx.trigger(self.register, "write", value)
                ctx.kernel.arrive(op)
            """,
            "R004",
        )
        assert rules_fired(result) == ["R004"]
        assert "delivery seam" in result.active[0].message

    def test_deliver_from_protocol_code_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def short_circuit(self, op):
                self.kernel.deliver(op)
            """,
            "R004",
        )
        assert rules_fired(result) == ["R004"]

    def test_transport_layer_may_call_the_seam(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def pump(self, op_id):
                self._kernel.arrive(op_id)
            """,
            "R004",
            name="repro/net/fixture.py",
        )
        assert result.active == []

    def test_other_receivers_named_deliver_are_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def ship(self, courier, parcel):
                courier.deliver(parcel)
            """,
            "R004",
        )
        assert result.active == []

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def short_circuit(self, op):
                self.kernel.deliver(op)  # repro-lint: disable=R004 fixture
            """,
            "R004",
        )
        assert result.active == []
        assert len(result.suppressed) == 1


# -- R005: listener hygiene --------------------------------------------------


class TestR005:
    def test_unpaired_add_listener_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def leaky(kernel, meter):
                kernel.add_listener(meter)
                kernel.run(max_steps=100)
            """,
            "R005",
        )
        assert rules_fired(result) == ["R005"]

    def test_finally_pairing_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def tidy(kernel, meter):
                kernel.add_listener(meter)
                try:
                    kernel.run(max_steps=100)
                finally:
                    kernel.remove_listener(meter)
            """,
            "R005",
        )
        assert result.active == []

    def test_mismatched_argument_still_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def sloppy(kernel, meter, other):
                kernel.add_listener(meter)
                try:
                    kernel.run(max_steps=100)
                finally:
                    kernel.remove_listener(other)
            """,
            "R005",
        )
        assert rules_fired(result) == ["R005"]

    def test_enter_exit_pairing_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            class Subscription:
                def __enter__(self):
                    self.kernel.add_listener(self.meter)
                    return self

                def __exit__(self, *exc):
                    self.kernel.remove_listener(self.meter)
            """,
            "R005",
        )
        assert result.active == []

    def test_module_level_subscription_is_ignored(self, tmp_path):
        # Only subscriptions inside functions are checked; deployment
        # wiring at class/module construction time is the baseline's job.
        result = lint_source(
            tmp_path,
            """
            KERNEL.add_listener(METER)
            """,
            "R005",
        )
        assert result.active == []

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def wired(kernel, meter):
                # repro-lint: disable=R005 permanent by design (fixture)
                kernel.add_listener(meter)
            """,
            "R005",
        )
        assert result.active == []
        assert len(result.suppressed) == 1


# -- R006: iteration-order hazards -------------------------------------------


class TestR006:
    def test_transport_layer_is_in_scope(self, tmp_path):
        # a transport draining arrivals in set order would leak hash
        # order into the delivery sequence the kernel observes.
        result = lint_source(
            tmp_path,
            """
            def drain(self):
                for op_id in set(self._arrived):
                    self._kernel.arrive(op_id)
            """,
            "R006",
            name="repro/net/fixture.py",
        )
        assert rules_fired(result) == ["R006"]

    def test_iterating_image_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def first_server(object_map, cov):
                for server_id in object_map.image(cov):
                    return server_id
            """,
            "R006",
        )
        assert rules_fired(result) == ["R006"]

    def test_set_literal_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def order():
                return [x for x in {3, 1, 2}]
            """,
            "R006",
        )
        assert rules_fired(result) == ["R006"]

    def test_set_difference_fires(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def fresh(tracker, previous):
                for object_id in tracker.preimage(previous) - previous:
                    yield object_id
            """,
            "R006",
        )
        assert rules_fired(result) == ["R006"]

    def test_sorted_wrapper_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def stable(object_map, cov):
                for server_id in sorted(object_map.image(cov)):
                    yield server_id
            """,
            "R006",
        )
        assert result.active == []

    def test_list_iteration_is_clean(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def rows(items):
                for item in list(items):
                    yield item
            """,
            "R006",
        )
        assert result.active == []

    def test_suppression_silences(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            def any_server(object_map, cov):
                # repro-lint: disable=R006 order-insensitive (fixture)
                return {s for s in object_map.image(cov)}
            """,
            "R006",
        )
        assert result.active == []
        assert len(result.suppressed) == 1


# -- engine-level behaviors shared by all rules ------------------------------


class TestEngine:
    def test_syntax_error_reports_r000(self, tmp_path):
        result = lint_source(tmp_path, "def broken(:\n", "R001")
        assert rules_fired(result) == ["R000"]

    def test_multi_rule_directive(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random
            import time

            # repro-lint: disable=R001,R002 fixture
            value = random.random() + time.time()
            """,
            "R001",
        )
        assert result.active == []
        result2 = lint_source(
            tmp_path,
            """
            import random
            import time

            # repro-lint: disable=R001,R002 fixture
            value = random.random() + time.time()
            """,
            "R002",
        )
        assert result2.active == []

    def test_directive_does_not_leak_to_other_rules(self, tmp_path):
        result = lint_source(
            tmp_path,
            """
            import random

            value = random.random()  # repro-lint: disable=R002 wrong id
            """,
            "R001",
        )
        assert rules_fired(result) == ["R001"]
