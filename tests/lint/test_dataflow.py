"""Unit suite for the intraprocedural dataflow engine.

Covers CFG construction over every structured-statement shape the
builder handles (if/for/while/try/with, break/continue/return/raise),
reaching-definitions joins at merge points, literal-kind resolution
through assignments, builtin resolution through parameter defaults,
and taint propagation with kill-on-clean-reassignment.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint.dataflow import (
    CFG,
    ReachingDefs,
    Taint,
    literal_kind,
    may_be_kind,
    resolves_to_builtin,
)


def _func(source: str) -> ast.FunctionDef:
    module = ast.parse(textwrap.dedent(source))
    func = module.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return func


def _reaching(source: str) -> ReachingDefs:
    return ReachingDefs(_func(source))


def _stmt(reaching: ReachingDefs, kind: type) -> ast.AST:
    for stmt in reaching.statements():
        if isinstance(stmt, kind):
            return stmt
    raise AssertionError(f"no {kind.__name__} statement found")


def _load(name: str) -> ast.expr:
    return ast.parse(name, mode="eval").body


# -- CFG construction ---------------------------------------------------------


class TestCFGConstruction:
    def test_straight_line_is_one_block(self):
        cfg = CFG.from_function(_func("def f():\n    a = 1\n    b = 2\n"))
        populated = [b for b in cfg.blocks if b.stmts]
        assert len(populated) == 1
        assert len(populated[0].stmts) == 2

    def test_if_creates_branch_and_join(self):
        cfg = CFG.from_function(
            _func(
                """
                def f(c):
                    if c:
                        a = 1
                    b = 2
                """
            )
        )
        entry = cfg.blocks[cfg.entry]
        # fall-through edge (no else) plus then-branch edge
        assert len(entry.succs) == 2

    def test_if_else_both_exits_reach_join(self):
        reaching = _reaching(
            """
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        ret = _stmt(reaching, ast.Return)
        assert len(reaching.defs_of(ret, "x")) == 2

    def test_if_without_else_keeps_prior_def(self):
        reaching = _reaching(
            """
            def f(c):
                x = 1
                if c:
                    x = 2
                return x
            """
        )
        ret = _stmt(reaching, ast.Return)
        lines = sorted(d.stmt.lineno for d in reaching.defs_of(ret, "x"))
        assert len(lines) == 2

    def test_while_loop_back_edge(self):
        reaching = _reaching(
            """
            def f(c):
                x = 1
                while c:
                    x = x + 1
                return x
            """
        )
        ret = _stmt(reaching, ast.Return)
        # zero-iteration def AND loop-body def both reach the exit
        assert len(reaching.defs_of(ret, "x")) == 2

    def test_for_target_defined_in_body(self):
        reaching = _reaching(
            """
            def f(items):
                for item in items:
                    use = item
                return use
            """
        )
        assign = _stmt(reaching, ast.Assign)
        defs = reaching.defs_of(assign, "item")
        assert len(defs) == 1
        assert defs[0].via == "for"

    def test_break_skips_rest_of_loop(self):
        reaching = _reaching(
            """
            def f(items):
                x = 1
                for item in items:
                    break
                    x = 2
                return x
            """
        )
        ret = _stmt(reaching, ast.Return)
        lines = [d.stmt.lineno for d in reaching.defs_of(ret, "x")]
        # the pre-loop def (line 3 of the dedented source) must reach
        assert 3 in lines

    def test_continue_edges_back_to_header(self):
        func = _func(
            """
            def f(items):
                total = 0
                for item in items:
                    if item:
                        continue
                    total = total + 1
                return total
            """
        )
        # fixpoint must terminate despite the continue back-edge
        reaching = ReachingDefs(func)
        ret = _stmt(reaching, ast.Return)
        assert reaching.defs_of(ret, "total")

    def test_try_except_both_paths_join(self):
        reaching = _reaching(
            """
            def f():
                try:
                    x = 1
                except ValueError:
                    x = 2
                return x
            """
        )
        ret = _stmt(reaching, ast.Return)
        assert len(reaching.defs_of(ret, "x")) == 2

    def test_try_handler_sees_partial_body(self):
        reaching = _reaching(
            """
            def f():
                try:
                    a = 1
                    b = risky()
                    a = 2
                except ValueError:
                    out = a
                return out
            """
        )
        handler_assign = [
            s
            for s in reaching.statements()
            if isinstance(s, ast.Assign)
            and isinstance(s.targets[0], ast.Name)
            and s.targets[0].id == "out"
        ][0]
        # the exception may fire between a=1 and a=2: both defs reach
        assert len(reaching.defs_of(handler_assign, "a")) == 2

    def test_finally_reachable_after_raise(self):
        reaching = _reaching(
            """
            def f():
                x = 1
                try:
                    raise ValueError()
                finally:
                    y = x
            """
        )
        y_assign = [
            s
            for s in reaching.statements()
            if isinstance(s, ast.Assign)
            and isinstance(s.targets[0], ast.Name)
            and s.targets[0].id == "y"
        ][0]
        assert reaching.defs_of(y_assign, "x")

    def test_with_as_binding(self):
        reaching = _reaching(
            """
            def f(path):
                with open(path) as fh:
                    data = fh.read()
                return data
            """
        )
        assign = _stmt(reaching, ast.Assign)
        defs = reaching.defs_of(assign, "fh")
        assert len(defs) == 1
        assert defs[0].via == "with"

    def test_return_terminates_block(self):
        reaching = _reaching(
            """
            def f(c):
                x = 1
                if c:
                    return x
                x = 2
                return x
            """
        )
        returns = [s for s in reaching.statements() if isinstance(s, ast.Return)]
        assert len(returns) == 2
        # at the second return, only x = 2 (line 6) reaches: the
        # x = 1 def was killed and the early return left the graph
        lines = [d.stmt.lineno for d in reaching.defs_of(returns[1], "x")]
        assert lines == [6]


# -- reaching-defs semantics --------------------------------------------------


class TestReachingDefs:
    def test_reassignment_kills(self):
        reaching = _reaching(
            """
            def f():
                x = "a"
                x = 1
                return x
            """
        )
        ret = _stmt(reaching, ast.Return)
        defs = reaching.defs_of(ret, "x")
        assert len(defs) == 1
        assert literal_kind(defs[0].value) == "int"

    def test_augassign_keeps_prior_defs(self):
        reaching = _reaching(
            """
            def f():
                total = 0.0
                total += 1
                return total
            """
        )
        ret = _stmt(reaching, ast.Return)
        vias = {d.via for d in reaching.defs_of(ret, "total")}
        assert vias == {"assign", "augassign"}

    def test_param_default_is_entry_value(self):
        reaching = _reaching(
            """
            def f(announce=print):
                return announce
            """
        )
        ret = _stmt(reaching, ast.Return)
        defs = reaching.defs_of(ret, "announce")
        assert len(defs) == 1
        assert isinstance(defs[0].value, ast.Name)
        assert defs[0].value.id == "print"

    def test_param_without_default_is_opaque(self):
        reaching = _reaching("def f(x):\n    return x\n")
        ret = _stmt(reaching, ast.Return)
        defs = reaching.defs_of(ret, "x")
        assert len(defs) == 1
        assert defs[0].value is None

    def test_tuple_unpack_pairs_values(self):
        reaching = _reaching(
            """
            def f():
                a, b = "s", 1
                return a
            """
        )
        ret = _stmt(reaching, ast.Return)
        assert literal_kind(reaching.defs_of(ret, "a")[0].value) == "str"
        assert literal_kind(reaching.defs_of(ret, "b")[0].value) == "int"

    def test_except_as_binding(self):
        reaching = _reaching(
            """
            def f():
                try:
                    risky()
                except ValueError as err:
                    return err
            """
        )
        ret = _stmt(reaching, ast.Return)
        defs = reaching.defs_of(ret, "err")
        assert len(defs) == 1
        assert defs[0].via == "except"


# -- value kinds --------------------------------------------------------------


class TestValueKinds:
    def test_literal_kinds(self):
        cases = {
            '"s"': "str",
            'b"s"': "bytes",
            "1": "int",
            "1.5": "float",
            "True": "bool",
            "None": "none",
            "[1]": "list",
            "(1,)": "tuple",
            "{1}": "set",
            "{1: 2}": "dict",
            'f"{x}"': "str",
            "str(x)": "str",
            "sorted(x)": "list",
            "x.y": None,
            "foo(x)": None,
        }
        for source, expected in cases.items():
            assert literal_kind(_load(source)) == expected, source

    def test_binop_float_promotion(self):
        assert literal_kind(_load("1.0 + 2")) == "float"
        assert literal_kind(_load("1 + 2")) == "int"
        assert literal_kind(_load('"a" + "b"')) == "str"

    def test_may_be_kind_through_branches(self):
        reaching = _reaching(
            """
            def f(c):
                x = 1
                if c:
                    x = "s"
                return x
            """
        )
        ret = _stmt(reaching, ast.Return)
        name = _load("x")
        assert may_be_kind(name, "str", reaching, ret)
        assert may_be_kind(name, "int", reaching, ret)
        assert not may_be_kind(name, "bytes", reaching, ret)

    def test_may_be_kind_through_chained_names(self):
        reaching = _reaching(
            """
            def f():
                a = "s"
                b = a
                c = b
                return c
            """
        )
        ret = _stmt(reaching, ast.Return)
        assert may_be_kind(_load("c"), "str", reaching, ret)

    def test_unknown_never_matches(self):
        reaching = _reaching(
            """
            def f(x):
                y = x.attr
                return y
            """
        )
        ret = _stmt(reaching, ast.Return)
        assert not may_be_kind(_load("y"), "str", reaching, ret)

    def test_resolves_to_builtin_via_default(self):
        reaching = _reaching(
            """
            def f(announce=print):
                announce("hi")
            """
        )
        call = _stmt(reaching, ast.Expr)
        assert (
            resolves_to_builtin(_load("announce"), {"print"}, reaching, call)
            == "print"
        )

    def test_resolves_to_builtin_negative(self):
        reaching = _reaching(
            """
            def f(announce=None):
                announce("hi")
            """
        )
        call = _stmt(reaching, ast.Expr)
        assert (
            resolves_to_builtin(_load("announce"), {"print"}, reaching, call)
            is None
        )


# -- taint --------------------------------------------------------------------


def _hash_source(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "hash"
    )


class TestTaint:
    def test_taint_propagates_through_assignment(self):
        reaching = _reaching(
            """
            def f(key):
                h = hash(key)
                derived = h + 1
                return derived
            """
        )
        taint = Taint(reaching, _hash_source)
        ret = _stmt(reaching, ast.Return)
        assert "h" in taint.tainted_before(ret)
        assert "derived" in taint.tainted_before(ret)

    def test_clean_reassignment_kills_taint(self):
        reaching = _reaching(
            """
            def f(key):
                h = hash(key)
                h = 0
                return h
            """
        )
        taint = Taint(reaching, _hash_source)
        ret = _stmt(reaching, ast.Return)
        assert "h" not in taint.tainted_before(ret)

    def test_taint_survives_one_branch(self):
        reaching = _reaching(
            """
            def f(key, c):
                h = hash(key)
                if c:
                    h = 0
                return h
            """
        )
        taint = Taint(reaching, _hash_source)
        ret = _stmt(reaching, ast.Return)
        # may-analysis: the not-taken branch leaves h tainted
        assert "h" in taint.tainted_before(ret)

    def test_expr_tainted_reads_state(self):
        reaching = _reaching(
            """
            def f(key):
                h = hash(key)
                return h
            """
        )
        taint = Taint(reaching, _hash_source)
        ret = _stmt(reaching, ast.Return)
        assert taint.expr_tainted(_load("h + 1"), taint.tainted_before(ret))
        assert not taint.expr_tainted(_load("k"), taint.tainted_before(ret))

    def test_stmt_sources_hook(self):
        reaching = _reaching(
            """
            def f(xs):
                total = 0.0
                for x in xs:
                    total += x
                return total
            """
        )

        def float_augment(stmt, state):
            if isinstance(stmt, ast.AugAssign) and isinstance(
                stmt.target, ast.Name
            ):
                return {stmt.target.id}
            return set()

        taint = Taint(reaching, lambda e: False, stmt_sources=float_augment)
        ret = _stmt(reaching, ast.Return)
        assert "total" in taint.tainted_before(ret)
