"""Tests for the multi-writer regularity checkers."""

import pytest

from repro.consistency.mw_regularity import (
    check_mw_regular_strong,
    check_mw_regular_weak,
)
from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId


def _op(seq, name, invoke, ret, args=(), result=None, client=0):
    return HistoryOp(
        seq=seq,
        client_id=ClientId(client),
        name=name,
        args=args,
        invoke_time=invoke,
        return_time=ret,
        result=result,
    )


def _history(entries):
    history = History()
    for op in entries:
        history.ops[op.seq] = op
    return history


class TestMWWeak:
    def test_clean_sequential(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "a"),
            ]
        )
        assert check_mw_regular_weak(history) == []

    def test_concurrent_writes_either_value_ok(self):
        writes = [
            _op(0, "write", 1, 10, ("a",), "ack", client=0),
            _op(1, "write", 2, 9, ("b",), "ack", client=1),
        ]
        for value in ("a", "b"):
            history = _history(
                writes + [_op(2, "read", 11, 12, (), value, client=2)]
            )
            assert check_mw_regular_weak(history) == []

    def test_stale_read_violates(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 4, ("b",), "ack"),
                _op(2, "read", 5, 6, (), "a"),
            ]
        )
        violations = check_mw_regular_weak(history)
        assert len(violations) == 1
        assert violations[0].condition == "MW-Weak"

    def test_per_read_orders_may_differ(self):
        """Two reads disagreeing on the order of concurrent writes are
        fine for MW-Weak (each gets its own linearization)."""
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack", client=0),
                _op(1, "write", 2, 9, ("b",), "ack", client=1),
                _op(2, "read", 11, 12, (), "a", client=2),
                _op(3, "read", 13, 14, (), "b", client=3),
            ]
        )
        assert check_mw_regular_weak(history) == []

    def test_initial_value(self):
        history = _history([_op(0, "read", 1, 2, (), "v0")])
        assert check_mw_regular_weak(history, initial_value="v0") == []
        assert check_mw_regular_weak(history, initial_value="x")


class TestMWStrong:
    def test_clean_sequential(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "a"),
            ]
        )
        assert check_mw_regular_strong(history) == []

    def test_disagreeing_reads_need_not_fit_one_order(self):
        """The MW-Weak example above fails MW-Strong: reads at disjoint
        later times must agree on the final write order, and two
        *sequential* reads returning a then b then a cannot."""
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack", client=0),
                _op(1, "write", 2, 9, ("b",), "ack", client=1),
                _op(2, "read", 11, 12, (), "a", client=2),
                _op(3, "read", 13, 14, (), "b", client=2),
                _op(4, "read", 15, 16, (), "a", client=2),
            ]
        )
        assert check_mw_regular_weak(history) == []
        assert check_mw_regular_strong(history) != []

    def test_consistent_reads_fit_one_order(self):
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack", client=0),
                _op(1, "write", 2, 9, ("b",), "ack", client=1),
                _op(2, "read", 11, 12, (), "b", client=2),
                _op(3, "read", 13, 14, (), "b", client=2),
            ]
        )
        assert check_mw_regular_strong(history) == []

    def test_real_time_respected_in_order_search(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 4, ("b",), "ack"),
                _op(2, "read", 5, 6, (), "a"),
            ]
        )
        # Only order (a, b) is real-time-consistent; the read wants a.
        assert check_mw_regular_strong(history) != []

    def test_write_cap(self):
        history = _history(
            [
                _op(i, "write", 2 * i + 1, 2 * i + 2, (f"v{i}",), "ack")
                for i in range(9)
            ]
        )
        with pytest.raises(ValueError):
            check_mw_regular_strong(history, max_writes=7)

    def test_no_reads_trivially_ok(self):
        history = _history([_op(0, "write", 1, 2, ("a",), "ack")])
        assert check_mw_regular_strong(history) == []


class TestHierarchy:
    def test_strong_implies_weak_on_samples(self):
        samples = [
            [
                _op(0, "write", 1, 10, ("a",), "ack", client=0),
                _op(1, "write", 2, 9, ("b",), "ack", client=1),
                _op(2, "read", 3, 8, (), "a", client=2),
            ],
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "a"),
                _op(2, "write", 5, 6, ("b",), "ack"),
                _op(3, "read", 7, 8, (), "b"),
            ],
        ]
        for entries in samples:
            history = _history(entries)
            if check_mw_regular_strong(history) == []:
                assert check_mw_regular_weak(history) == []

    def test_collapse_to_ws_regular_when_write_sequential(self):
        from repro.consistency.ws import check_ws_regular

        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 5, 8, ("b",), "ack"),
                _op(2, "read", 6, 7, (), "a"),
            ]
        )
        assert history.is_write_sequential()
        ws = check_ws_regular(history) == []
        weak = check_mw_regular_weak(history) == []
        strong = check_mw_regular_strong(history) == []
        assert ws == weak == strong


class TestAgainstEmulations:
    def test_abd_regular_variant_is_mw_weak(self):
        from repro.core.abd import ABDEmulation
        from repro.sim.scheduling import RandomScheduler

        for seed in range(5):
            emu = ABDEmulation(
                n=5, f=2, write_back=False, scheduler=RandomScheduler(seed)
            )
            writers = [emu.add_client() for _ in range(2)]
            reader = emu.add_client()
            writers[0].enqueue("write", "a")
            writers[1].enqueue("write", "b")
            reader.enqueue("read")
            assert emu.system.run_to_quiescence().satisfied
            assert check_mw_regular_weak(emu.history) == []

    def test_abd_atomic_variant_is_mw_strong(self):
        from repro.core.abd import ABDEmulation
        from repro.sim.scheduling import RandomScheduler

        for seed in range(5):
            emu = ABDEmulation(
                n=5, f=2, write_back=True, scheduler=RandomScheduler(seed)
            )
            writers = [emu.add_client() for _ in range(2)]
            readers = [emu.add_client() for _ in range(2)]
            for i, writer in enumerate(writers):
                writer.enqueue("write", f"w{i}")
            for reader in readers:
                reader.enqueue("read")
            assert emu.system.run_to_quiescence().satisfied
            assert check_mw_regular_strong(emu.history) == []
