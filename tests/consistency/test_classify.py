"""Tests for the consistency-strength classifier."""

import pytest

from repro.consistency.mw_regularity import classify_history
from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId


def _op(seq, name, invoke, ret, args=(), result=None, client=0):
    return HistoryOp(
        seq=seq,
        client_id=ClientId(client),
        name=name,
        args=args,
        invoke_time=invoke,
        return_time=ret,
        result=result,
    )


def _history(entries):
    history = History()
    for op in entries:
        history.ops[op.seq] = op
    return history


class TestClassification:
    def test_atomic_history(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "a"),
            ]
        )
        assert classify_history(history) == "atomic"

    def test_mw_weak_but_not_strong(self):
        """Concurrent writes; sequential reads disagree on their order:
        weak holds (per-read orders), strong does not; atomicity fails."""
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack", client=0),
                _op(1, "write", 2, 9, ("b",), "ack", client=1),
                _op(2, "read", 11, 12, (), "a", client=2),
                _op(3, "read", 13, 14, (), "b", client=2),
                _op(4, "read", 15, 16, (), "a", client=2),
            ]
        )
        assert classify_history(history) == "mw-weak"

    def test_regular_but_not_atomic(self):
        """A new-old read inversion under a concurrent write: every read
        individually linearizes with the writes (MW-Weak and, with one
        write order, MW-Strong) but no total order with reads exists."""
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 30, ("b",), "ack"),
                _op(2, "read", 4, 5, (), "b", client=1),
                _op(3, "read", 6, 7, (), "a", client=1),
            ]
        )
        assert classify_history(history) == "mw-strong"

    def test_ws_safe_only(self):
        """A read concurrent with a write returning garbage: WS-Safety
        does not constrain it, the regularity conditions do."""
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack"),
                _op(1, "read", 2, 9, (), "garbage", client=1),
            ]
        )
        assert classify_history(history, initial_value="v0") == "ws-safe"

    def test_none(self):
        """An isolated read returning garbage violates even WS-Safety."""
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "garbage", client=1),
            ]
        )
        assert classify_history(history, initial_value="v0") == "none"

    def test_strength_order_on_emulations(self):
        from repro.core.abd import ABDEmulation
        from repro.sim.scheduling import RandomScheduler

        emu = ABDEmulation(n=3, f=1, scheduler=RandomScheduler(3))
        a, b = emu.add_client(), emu.add_client()
        a.enqueue("write", "x")
        b.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert classify_history(emu.history) == "atomic"
