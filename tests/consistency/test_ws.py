"""Tests for WS-Regular / WS-Safe checkers."""

from repro.consistency.ws import (
    check_ws_regular,
    check_ws_safe,
    valid_read_values_ws_regular,
    valid_read_values_ws_safe,
)
from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId


def _op(seq, name, invoke, ret, args=(), result=None, client=0):
    return HistoryOp(
        seq=seq,
        client_id=ClientId(client),
        name=name,
        args=args,
        invoke_time=invoke,
        return_time=ret,
        result=result,
    )


def _history(ops):
    history = History()
    for op in ops:
        history.ops[op.seq] = op
    return history


class TestWSSafe:
    def test_isolated_read_must_return_last_write(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 4, ("b",), "ack"),
                _op(2, "read", 5, 6, (), "b"),
            ]
        )
        assert check_ws_safe(history) == []

    def test_isolated_stale_read_flagged(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 4, ("b",), "ack"),
                _op(2, "read", 5, 6, (), "a"),
            ]
        )
        violations = check_ws_safe(history)
        assert len(violations) == 1
        assert violations[0].allowed == ["b"]

    def test_read_concurrent_with_write_unconstrained(self):
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack"),
                _op(1, "read", 2, 9, (), "garbage"),
            ]
        )
        assert check_ws_safe(history) == []

    def test_initial_value(self):
        history = _history([_op(0, "read", 1, 2, (), "v0")])
        assert check_ws_safe(history, initial_value="v0") == []
        assert len(check_ws_safe(history, initial_value="other")) == 1

    def test_not_write_sequential_vacuous(self):
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack"),
                _op(1, "write", 2, 9, ("b",), "ack"),
                _op(2, "read", 11, 12, (), "nonsense"),
            ]
        )
        assert check_ws_safe(history) == []

    def test_pending_read_ignored(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, None, (), None),
            ]
        )
        assert check_ws_safe(history) == []


class TestWSRegular:
    def test_overlapping_read_may_return_old_or_new(self):
        writes = [
            _op(0, "write", 1, 2, ("a",), "ack"),
            _op(1, "write", 5, 10, ("b",), "ack"),
        ]
        for value in ("a", "b"):
            history = _history(writes + [_op(2, "read", 6, 9, (), value)])
            assert check_ws_regular(history, cross_check=True) == []

    def test_read_cannot_skip_back(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 4, ("b",), "ack"),
                _op(2, "read", 6, 9, (), "a"),
            ]
        )
        violations = check_ws_regular(history, cross_check=True)
        assert len(violations) == 1

    def test_read_cannot_return_future_write(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "b"),
                _op(2, "write", 5, 6, ("b",), "ack"),
            ]
        )
        assert len(check_ws_regular(history, cross_check=True)) == 1

    def test_pending_write_value_allowed(self):
        history = _history(
            [
                _op(0, "write", 1, None, ("a",), None),
                _op(1, "read", 3, 4, (), "a"),
            ]
        )
        assert check_ws_regular(history, cross_check=True) == []

    def test_initial_value_allowed_before_any_write_completes(self):
        history = _history(
            [
                _op(0, "write", 5, 10, ("a",), "ack"),
                _op(1, "read", 6, 9, (), "v0"),
            ]
        )
        assert check_ws_regular(history, initial_value="v0", cross_check=True) == []

    def test_safe_implies_regular_on_isolated_reads(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "a"),
            ]
        )
        assert check_ws_regular(history, cross_check=True) == []
        assert check_ws_safe(history) == []


class TestAllowedValueSets:
    def test_ws_safe_singleton(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "a"),
            ]
        )
        read = history.reads[0]
        assert valid_read_values_ws_safe(history, read) == ["a"]

    def test_ws_safe_none_for_concurrent(self):
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack"),
                _op(1, "read", 2, 9, (), "a"),
            ]
        )
        read = history.reads[0]
        assert valid_read_values_ws_safe(history, read) is None

    def test_ws_regular_window(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 5, 20, ("b",), "ack"),
                _op(2, "read", 6, 10, (), "a"),
            ]
        )
        read = history.reads[0]
        assert set(valid_read_values_ws_regular(history, read)) == {"a", "b"}
