"""Tests for the fast register atomicity checker."""

from repro.consistency.register_atomicity import is_register_history_atomic
from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId


def _op(seq, name, invoke, ret, args=(), result=None, client=0):
    return HistoryOp(
        seq=seq,
        client_id=ClientId(client),
        name=name,
        args=args,
        invoke_time=invoke,
        return_time=ret,
        result=result,
    )


def _history(ops):
    history = History()
    for op in ops:
        history.ops[op.seq] = op
    return history


class TestWriteSequentialFastPath:
    def test_clean_sequential_history(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "a"),
                _op(2, "write", 5, 6, ("b",), "ack"),
                _op(3, "read", 7, 8, (), "b"),
            ]
        )
        assert is_register_history_atomic(history)

    def test_stale_isolated_read_rejected(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 4, ("b",), "ack"),
                _op(2, "read", 5, 6, (), "a"),
            ]
        )
        assert not is_register_history_atomic(history)

    def test_old_new_inversion_rejected(self):
        """Regular but not atomic: sequential reads observe b then a while
        overlapping a slow write."""
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 30, ("b",), "ack"),
                _op(2, "read", 4, 5, (), "b"),
                _op(3, "read", 6, 7, (), "a"),
            ]
        )
        assert not is_register_history_atomic(history)

    def test_inversion_ok_for_concurrent_reads(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 30, ("b",), "ack"),
                _op(2, "read", 4, 10, (), "b", client=1),
                _op(3, "read", 5, 9, (), "a", client=2),
            ]
        )
        assert is_register_history_atomic(history)

    def test_never_written_value_rejected(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), "ghost"),
            ]
        )
        assert not is_register_history_atomic(history)

    def test_initial_value_read(self):
        history = _history(
            [
                _op(0, "read", 1, 2, (), None),
                _op(1, "write", 3, 4, ("a",), "ack"),
            ]
        )
        assert is_register_history_atomic(history, initial_value=None)

    def test_initial_after_write_rejected(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "read", 3, 4, (), None),
            ]
        )
        assert not is_register_history_atomic(history, initial_value=None)


class TestFallbacks:
    def test_concurrent_writes_fall_back_to_search(self):
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack", client=0),
                _op(1, "write", 2, 9, ("b",), "ack", client=1),
                _op(2, "read", 11, 12, (), "a", client=2),
            ]
        )
        assert is_register_history_atomic(history)

    def test_concurrent_writes_bad_read(self):
        history = _history(
            [
                _op(0, "write", 1, 10, ("a",), "ack", client=0),
                _op(1, "write", 2, 9, ("b",), "ack", client=1),
                _op(2, "read", 11, 12, (), "a", client=2),
                _op(3, "read", 13, 14, (), "b", client=2),
            ]
        )
        # After both writes completed, sequential reads a-then-b by one
        # client: the later read must not see the earlier-linearized write.
        assert not is_register_history_atomic(history)

    def test_duplicate_values_fall_back(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, 4, ("a",), "ack"),
                _op(2, "read", 5, 6, (), "a"),
            ]
        )
        assert is_register_history_atomic(history)

    def test_pending_final_write_optional(self):
        history = _history(
            [
                _op(0, "write", 1, 2, ("a",), "ack"),
                _op(1, "write", 3, None, ("b",), None),
                _op(2, "read", 4, 5, (), "a", client=1),
                _op(3, "read", 6, 7, (), "b", client=1),
            ]
        )
        # Read "a" then "b": pending write linearizes between them. But the
        # history is not write-sequential (pending write concurrent with
        # nothing? it IS concurrent with the reads only), so fast path
        # applies... either way must be accepted.
        assert is_register_history_atomic(history)
