"""Scale behaviour of the exact checkers: memoization keeps realistic
histories tractable.

Linearizability checking is NP-complete in general; the Wing-Gong memo
keeps our history sizes (dozens of ops) fast.  These tests run the
checkers on deliberately wide histories and assert they finish — with
step/op-count shapes that would blow up a memoless search.
"""

from repro.consistency.linearizability import is_linearizable
from repro.consistency.specs import MaxRegisterSpec, RegisterSpec
from repro.sim.history import HistoryOp
from repro.sim.ids import ClientId


def _op(seq, name, invoke, ret, args=(), result=None, client=0):
    return HistoryOp(
        seq=seq,
        client_id=ClientId(client),
        name=name,
        args=args,
        invoke_time=invoke,
        return_time=ret,
        result=result,
    )


class TestWideConcurrentHistories:
    def test_16_concurrent_writes_one_read(self):
        """All writes pairwise concurrent: 16! orders naively, fine with
        memoization because the register state collapses."""
        ops = [
            _op(i, "write", 1, 100, (f"v{i}",), "ack", client=i)
            for i in range(16)
        ]
        ops.append(_op(99, "read", 101, 102, (), "v7", client=99))
        assert is_linearizable(ops, RegisterSpec(None))

    def test_12_concurrent_writes_bad_read(self):
        """The unsatisfiable case is the true worst case (the memo must
        exhaust all subset states); 12 writes keeps it well under a
        second while still far beyond a memoless search."""
        ops = [
            _op(i, "write", 1, 100, (f"v{i}",), "ack", client=i)
            for i in range(12)
        ]
        ops.append(_op(99, "read", 101, 102, (), "ghost", client=99))
        assert not is_linearizable(ops, RegisterSpec(None))

    def test_monotone_maxregister_history_wide(self):
        ops = [
            _op(i, "write_max", 1, 100, (i,), "ok", client=i)
            for i in range(14)
        ]
        ops.append(_op(99, "read_max", 101, 102, (), 13, client=99))
        assert is_linearizable(ops, MaxRegisterSpec(-1))

    def test_interleaved_rounds(self):
        """Alternating sequential blocks of concurrent pairs: 20 ops with
        genuine precedence structure."""
        ops = []
        seq = 0
        time = 1
        last_value = None
        for block in range(5):
            a = f"b{block}a"
            b = f"b{block}b"
            ops.append(
                _op(seq, "write", time, time + 3, (a,), "ack", client=0)
            )
            seq += 1
            ops.append(
                _op(seq, "write", time + 1, time + 4, (b,), "ack", client=1)
            )
            seq += 1
            ops.append(
                _op(seq, "read", time + 5, time + 6, (), b, client=2)
            )
            last_value = b
            seq += 1
            time += 8
        assert is_linearizable(ops, RegisterSpec(None))
        # Flip the final read to an early block's value: must fail.
        ops[-1] = _op(
            ops[-1].seq,
            "read",
            ops[-1].invoke_time,
            ops[-1].return_time,
            (),
            "b0a",
            client=2,
        )
        assert not is_linearizable(ops, RegisterSpec(None))
