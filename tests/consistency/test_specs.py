"""Tests for sequential specifications."""

import pytest

from repro.consistency.specs import CASSpec, MaxRegisterSpec, RegisterSpec


class TestRegisterSpec:
    def test_initial_read(self):
        spec = RegisterSpec("v0")
        state = spec.initial_state()
        _, result = spec.apply(state, "read", ())
        assert result == "v0"

    def test_write_then_read(self):
        spec = RegisterSpec(None)
        state, ack = spec.apply(spec.initial_state(), "write", ("x",))
        assert ack == "ack"
        _, result = spec.apply(state, "read", ())
        assert result == "x"

    def test_last_write_wins(self):
        spec = RegisterSpec(None)
        state = spec.initial_state()
        state, _ = spec.apply(state, "write", (1,))
        state, _ = spec.apply(state, "write", (2,))
        _, result = spec.apply(state, "read", ())
        assert result == 2

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            RegisterSpec(None).apply(None, "cas", (1, 2))


class TestMaxRegisterSpec:
    def test_monotone(self):
        spec = MaxRegisterSpec(0)
        state = spec.initial_state()
        state, _ = spec.apply(state, "write_max", (5,))
        state, _ = spec.apply(state, "write_max", (3,))
        _, result = spec.apply(state, "read_max", ())
        assert result == 5

    def test_write_max_result(self):
        spec = MaxRegisterSpec(0)
        _, result = spec.apply(0, "write_max", (1,))
        assert result == "ok"

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            MaxRegisterSpec(0).apply(0, "write", (1,))


class TestCASSpec:
    def test_success(self):
        spec = CASSpec(0)
        state, old = spec.apply(spec.initial_state(), "cas", (0, 7))
        assert (state, old) == (7, 0)

    def test_failure_keeps_state(self):
        spec = CASSpec(3)
        state, old = spec.apply(spec.initial_state(), "cas", (0, 7))
        assert (state, old) == (3, 3)

    def test_unknown_op(self):
        with pytest.raises(ValueError):
            CASSpec(0).apply(0, "read", ())
