"""Tests for the general linearizability checker."""

from repro.consistency.linearizability import (
    find_linearization,
    is_linearizable,
)
from repro.consistency.specs import CASSpec, MaxRegisterSpec, RegisterSpec
from repro.sim.history import HistoryOp
from repro.sim.ids import ClientId


def _op(seq, name, invoke, ret, args=(), result=None, client=0):
    return HistoryOp(
        seq=seq,
        client_id=ClientId(client),
        name=name,
        args=args,
        invoke_time=invoke,
        return_time=ret,
        result=result,
    )


class TestRegisterHistories:
    def test_empty_history(self):
        assert is_linearizable([], RegisterSpec(None))

    def test_sequential_write_read(self):
        ops = [
            _op(0, "write", 1, 2, ("a",), "ack"),
            _op(1, "read", 3, 4, (), "a"),
        ]
        assert is_linearizable(ops, RegisterSpec(None))

    def test_stale_read_rejected(self):
        ops = [
            _op(0, "write", 1, 2, ("a",), "ack"),
            _op(1, "write", 3, 4, ("b",), "ack"),
            _op(2, "read", 5, 6, (), "a"),
        ]
        assert not is_linearizable(ops, RegisterSpec(None))

    def test_concurrent_read_may_return_either(self):
        write = _op(0, "write", 1, 10, ("a",), "ack")
        for value in (None, "a"):
            read = _op(1, "read", 2, 9, (), value)
            assert is_linearizable([write, read], RegisterSpec(None))

    def test_old_new_inversion_rejected(self):
        """Two sequential reads must not observe values out of order once
        both writes have completed."""
        ops = [
            _op(0, "write", 1, 2, ("a",), "ack"),
            _op(1, "write", 3, 4, ("b",), "ack"),
            _op(2, "read", 5, 6, (), "b"),
            _op(3, "read", 7, 8, (), "a"),
        ]
        assert not is_linearizable(ops, RegisterSpec(None))

    def test_pending_write_may_be_dropped(self):
        ops = [
            _op(0, "write", 1, None, ("a",), None),
            _op(1, "read", 5, 6, (), None),
        ]
        assert is_linearizable(ops, RegisterSpec(None))

    def test_pending_write_may_take_effect(self):
        ops = [
            _op(0, "write", 1, None, ("a",), None),
            _op(1, "read", 5, 6, (), "a"),
        ]
        assert is_linearizable(ops, RegisterSpec(None))

    def test_returns_witness_order(self):
        ops = [
            _op(0, "write", 1, 2, ("a",), "ack"),
            _op(1, "read", 3, 4, (), "a"),
        ]
        order = find_linearization(ops, RegisterSpec(None))
        assert [op.seq for op in order] == [0, 1]

    def test_no_witness_when_unlinearizable(self):
        ops = [
            _op(0, "write", 1, 2, ("a",), "ack"),
            _op(1, "read", 3, 4, (), "ghost"),
        ]
        assert find_linearization(ops, RegisterSpec(None)) is None


class TestMaxRegisterHistories:
    def test_monotone_reads_accepted(self):
        ops = [
            _op(0, "write_max", 1, 2, (5,), "ok"),
            _op(1, "read_max", 3, 4, (), 5),
            _op(2, "write_max", 5, 6, (3,), "ok"),
            _op(3, "read_max", 7, 8, (), 5),
        ]
        assert is_linearizable(ops, MaxRegisterSpec(0))

    def test_decreasing_reads_rejected(self):
        ops = [
            _op(0, "write_max", 1, 2, (5,), "ok"),
            _op(1, "read_max", 3, 4, (), 5),
            _op(2, "read_max", 5, 6, (), 0),
        ]
        assert not is_linearizable(ops, MaxRegisterSpec(0))


class TestCASHistories:
    def test_exactly_one_winner(self):
        """Two concurrent cas(0, x) — exactly one may see the old 0."""
        ops = [
            _op(0, "cas", 1, 10, (0, 1), 0),
            _op(1, "cas", 2, 9, (0, 2), 1),
        ]
        assert is_linearizable(ops, CASSpec(0))

    def test_two_winners_rejected(self):
        ops = [
            _op(0, "cas", 1, 10, (0, 1), 0),
            _op(1, "cas", 2, 9, (0, 2), 0),
        ]
        # Both claim success from state 0 on different new values: the
        # second to linearize must have observed the first's new value.
        assert not is_linearizable(ops, CASSpec(0))
