"""Tests for the Appendix A.1 schedule utilities."""

import pytest

from repro.consistency.schedule import (
    complete,
    is_sequential,
    is_well_formed,
    ops,
    pending,
    project_client,
    project_ops,
    to_event_sequence,
    validate_event_sequence,
)
from repro.sim.history import History, HistoryOp
from repro.sim.ids import ClientId


def _op(seq, name, invoke, ret, client=0, args=(), result=None):
    return HistoryOp(
        seq=seq,
        client_id=ClientId(client),
        name=name,
        args=args,
        invoke_time=invoke,
        return_time=ret,
        result=result,
    )


def _history(entries):
    history = History()
    for op in entries:
        history.ops[op.seq] = op
    return history


class TestProjections:
    def test_ops_complete_pending(self):
        history = _history(
            [_op(0, "write", 1, 2), _op(1, "read", 3, None)]
        )
        assert len(ops(history)) == 2
        assert [o.seq for o in complete(history)] == [0]
        assert [o.seq for o in pending(history)] == [1]

    def test_project_client(self):
        history = _history(
            [
                _op(0, "write", 1, 2, client=0),
                _op(1, "read", 3, 4, client=1),
                _op(2, "read", 5, 6, client=0),
            ]
        )
        mine = project_client(history, ClientId(0))
        assert [o.seq for o in mine] == [0, 2]

    def test_project_ops(self):
        history = _history(
            [_op(0, "write", 1, 2), _op(1, "read", 3, 4), _op(2, "read", 5, 6)]
        )
        subset = project_ops(history, [history.ops[2], history.ops[0]])
        assert [o.seq for o in subset] == [0, 2]


class TestWellFormedness:
    def test_sequential(self):
        assert is_sequential([_op(0, "a", 1, 2), _op(1, "b", 3, 4)])
        assert not is_sequential([_op(0, "a", 1, 5), _op(1, "b", 3, 8)])

    def test_well_formed_history(self):
        history = _history(
            [
                _op(0, "write", 1, 2, client=0),
                _op(1, "read", 1, 5, client=1),  # concurrent across clients OK
                _op(2, "read", 3, 4, client=0),
            ]
        )
        assert is_well_formed(history)

    def test_ill_formed_history(self):
        history = _history(
            [
                _op(0, "write", 1, 10, client=0),
                _op(1, "read", 2, 5, client=0),  # same client, overlapping
            ]
        )
        assert not is_well_formed(history)

    def test_kernel_histories_are_well_formed(self):
        from repro.core.abd import ABDEmulation
        from repro.sim.scheduling import RandomScheduler

        emu = ABDEmulation(n=3, f=1, scheduler=RandomScheduler(5))
        clients = [emu.add_client() for _ in range(3)]
        for index, client in enumerate(clients):
            client.enqueue("write", index)
            client.enqueue("read")
        assert emu.system.run_to_quiescence().satisfied
        assert is_well_formed(emu.history)


class TestEventSequence:
    def test_round_trip(self):
        history = _history(
            [_op(0, "write", 1, 4, client=0), _op(1, "read", 2, 3, client=1)]
        )
        events = to_event_sequence(history)
        kinds = [(e.time, e.kind) for e in events]
        assert kinds == [
            (1, "invoke"),
            (2, "invoke"),
            (3, "response"),
            (4, "response"),
        ]
        validate_event_sequence(events)

    def test_validation_rejects_double_in_flight(self):
        from repro.consistency.schedule import ScheduleEvent

        first = _op(0, "write", 1, 5, client=0)
        second = _op(1, "read", 2, 3, client=0)
        events = [
            ScheduleEvent(1, "invoke", first),
            ScheduleEvent(2, "invoke", second),
        ]
        with pytest.raises(AssertionError):
            validate_event_sequence(events)

    def test_pending_ops_have_no_response_event(self):
        history = _history([_op(0, "write", 1, None)])
        events = to_event_sequence(history)
        assert len(events) == 1
        assert events[0].kind == "invoke"
        validate_event_sequence(events)
