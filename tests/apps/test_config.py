"""Tests for the epoch-guarded configuration service."""

import pytest

from repro.apps.config import ConfigService, InstallRaced


class TestInstallFetch:
    def test_initial_state(self):
        service = ConfigService(n=5, f=2, initial_config={"replicas": 3})
        epoch, config = service.fetch()
        assert epoch == 0
        assert config == {"replicas": 3}

    def test_install_bumps_epoch(self):
        service = ConfigService(n=5, f=2)
        installed = service.install({"replicas": 5})
        assert installed == 1
        epoch, config = service.fetch()
        assert (epoch, config) == (1, {"replicas": 5})

    def test_successive_installs(self):
        service = ConfigService(n=5, f=2)
        for expected, replicas in enumerate([3, 5, 7], start=1):
            assert service.install({"replicas": replicas}) == expected
        epoch, config = service.fetch()
        assert epoch == 3
        assert config == {"replicas": 7}

    def test_installs_by_different_processes(self):
        service = ConfigService(n=5, f=2)
        service.install("A", process=0)
        service.install("B", process=1)
        epoch, config = service.fetch(process=2)
        assert (epoch, config) == (2, "B")


class TestRaceDetection:
    def test_stale_claim_detected(self):
        """Simulate the race by advancing the epoch behind the
        installer's back between its claim and its verification."""
        service = ConfigService(n=5, f=2)

        original_advance = service.epochs.advance

        def racing_advance(process=0):
            claimed = original_advance(process=process)
            # Another process immediately claims a higher epoch.
            service.epochs.propose(claimed + 1, process=99)
            return claimed

        service.epochs.advance = racing_advance
        with pytest.raises(InstallRaced):
            service.install("raced")
        # The store was never written with the raced config.
        _epoch, config = service.fetch()
        assert config != "raced"


class TestFaultTolerance:
    def test_survives_f_crashes(self):
        service = ConfigService(n=5, f=2)
        service.install({"v": 1})
        service.crash_server(0)
        service.crash_server(3)
        assert service.install({"v": 2}, process=1) == 2
        epoch, config = service.fetch(process=2)
        assert (epoch, config) == (2, {"v": 2})

    def test_space_accounting(self):
        service = ConfigService(n=5, f=2)
        assert service.base_objects == 10  # 5 max-registers + 5 registers

    def test_current_epoch_view(self):
        service = ConfigService(n=5, f=2)
        assert service.current_epoch() == 0
        service.install("x")
        assert service.current_epoch(process=7) == 1
