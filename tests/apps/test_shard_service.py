"""The sharded KV service: router, configs, sessions, async path.

Everything here runs on in-process (sim-transport) shards so the tests
are deterministic; the socket deployments are covered by
``tests/integration/test_shard_cluster.py``.
"""

import pickle

import pytest

from repro.apps.shard import (
    Scenario,
    ShardConfig,
    ShardedKVService,
    ShardRouter,
    ShardServiceConfig,
    run_loadgen,
    stable_key_hash,
)
from repro.errors import (
    ShardCapacityExceeded,
    StaleShardMap,
    WriterBoundExceeded,
)


def service_config(**overrides):
    params = dict(
        shards=3, substrate="max-register", n=3, f=1, capacity=8, seed=7
    )
    params.update(overrides)
    return ShardServiceConfig.make(**params)


class TestRouter:
    def test_stable_hash_is_process_independent(self):
        # CRC-32, not the salted builtin ``hash``: the mapping must agree
        # across the coordinator and spawned replica processes.
        assert stable_key_hash("alpha") == 3504355690  # zlib.crc32
        assert stable_key_hash("") == 0

    def test_shard_of_is_deterministic_and_in_range(self):
        router = ShardRouter(5)
        for key in ("a", "b", "key-17", "user:42"):
            shard = router.shard_of(key)
            assert 0 <= shard < 5
            assert router.shard_of(key) == shard

    def test_partition_keys_routes_every_key_once(self):
        router = ShardRouter(3)
        keys = [f"key-{i}" for i in range(50)]
        parts = router.partition_keys(keys)
        assert len(parts) == 3
        assert sorted(k for ks in parts for k in ks) == sorted(keys)
        for shard, ks in enumerate(parts):
            assert all(router.shard_of(k) == shard for k in ks)

    def test_version_bump_and_check(self):
        router = ShardRouter(3)
        held = router.version
        router.check_version(held)
        assert router.bump() == held + 1
        with pytest.raises(StaleShardMap):
            router.check_version(held)

    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestShardConfigs:
    def test_shard_config_validation(self):
        with pytest.raises(ValueError):
            ShardConfig(substrate="bogus")
        with pytest.raises(ValueError):
            ShardConfig(n=2, f=1)
        with pytest.raises(ValueError):
            ShardConfig(capacity=0)
        with pytest.raises(ValueError):
            ShardConfig(k_writers=0)

    def test_service_config_make_builds_uniform_shards(self):
        config = service_config(shards=4, substrate="cas", n=5, f=2)
        assert config.n_shards == 4
        assert all(s.substrate == "cas" for s in config.shards)
        assert all((s.n, s.f) == (5, 2) for s in config.shards)

    def test_configs_picklable_and_cacheable(self):
        import json

        config = service_config()
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        payload = config.cache_payload()
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload


class TestSyncSessions:
    @pytest.mark.parametrize("substrate", ["max-register", "cas", "register"])
    def test_put_get_delete_scan_audit(self, substrate):
        service = ShardedKVService(service_config(substrate=substrate))
        with service.session(writer=0) as s:
            for i in range(6):
                s.put(f"key-{i}", f"v{i}")
            for i in range(6):
                assert s.get(f"key-{i}") == f"v{i}"
            s.delete("key-0")
            assert s.get("key-0") is None
            view = s.scan("key-")
            assert view == {f"key-{i}": f"v{i}" for i in range(1, 6)}
        audits = service.audit()
        assert len(audits) == 6
        assert all(audits.values()), audits

    def test_keys_spread_over_shards(self):
        service = ShardedKVService(service_config(capacity=24))
        with service.session(writer=0) as s:
            for i in range(24):
                s.put(f"key-{i}", i)
        used = {service.shard_of(k) for k in service.keys()}
        assert len(used) > 1  # 24 CRC-hashed keys don't all land together

    def test_crash_within_f_keeps_serving(self):
        service = ShardedKVService(service_config())
        with service.session(writer=0) as s:
            s.put("alpha", 1)
            service.crash_server(0)  # f=1: every shard loses one replica
            s.put("alpha", 2)
            assert s.get("alpha") == 2
        assert all(service.audit().values())

    def test_closed_session_refuses(self):
        service = ShardedKVService(service_config())
        s = service.session()
        s.close()
        with pytest.raises(RuntimeError):
            s.get("alpha")


class TestTypedFailures:
    def test_writer_bound_per_register_shard(self):
        service = ShardedKVService(
            service_config(substrate="register", k_writers=2)
        )
        with service.session(writer=1) as ok:
            ok.put("alpha", 1)
        with service.session(writer=2) as over:
            with pytest.raises(WriterBoundExceeded):
                over.put("alpha", 2)

    def test_negative_writer_rejected_at_open(self):
        service = ShardedKVService(service_config())
        with pytest.raises(WriterBoundExceeded):
            service.session(writer=-1)

    def test_unbounded_substrates_fold_writers_onto_pool(self):
        service = ShardedKVService(service_config(substrate="max-register"))
        with service.session(writer=10_000) as s:  # any identity works
            s.put("alpha", 1)
            assert s.get("alpha") == 1

    def test_shard_capacity_exceeded(self):
        service = ShardedKVService(service_config(shards=1, capacity=2))
        with service.session(writer=0) as s:
            s.put("a", 1)
            s.put("b", 2)
            with pytest.raises(ShardCapacityExceeded):
                s.put("c", 3)

    def test_stale_map_until_refresh(self):
        service = ShardedKVService(service_config())
        s = service.session(writer=0)
        s.put("alpha", 1)
        service.bump_map()
        with pytest.raises(StaleShardMap):
            s.get("alpha")
        s.refresh()
        assert s.get("alpha") == 1

    def test_transport_count_must_match_shards(self):
        with pytest.raises(ValueError):
            ShardedKVService(service_config(shards=3), transports=[None])


class TestAsyncPath:
    def test_submit_step_drain(self):
        service = ShardedKVService(service_config())
        s = service.session(writer=0)
        s.submit_put("alpha", "v1", token="w1")
        service.step()
        s.submit_get("alpha", token="r1")
        s.submit_get("missing", token="r2")  # completes without a round
        service.step()
        done = {tok: result for tok, _, result, _ in service.drain_completions()}
        assert done == {"w1": "ack", "r1": "v1", "r2": None}

    def test_sync_ops_do_not_swallow_async_tokens(self):
        service = ShardedKVService(service_config())
        s = service.session(writer=0)
        s.put("sync-key", 1)  # ensures slots/clients exist
        s.submit_put("async-key", "v", token="t1")
        # A sync op drives the shard to quiescence — the async token must
        # survive into drain_completions rather than vanish.
        assert s.get("sync-key") == 1
        service.step()
        tokens = [tok for tok, _, _, _ in service.drain_completions()]
        assert "t1" in tokens

    def test_completion_clock_stamps(self):
        service = ShardedKVService(service_config())
        ticks = iter(range(100))
        service.set_completion_clock(lambda: next(ticks))
        s = service.session(writer=0)
        s.submit_put("alpha", 1, token="w")
        service.step()
        [(tok, name, result, stamp)] = service.drain_completions()
        assert tok == "w" and stamp is not None
        service.set_completion_clock(None)


class FakeTime:
    """Deterministic clock: every read advances a little, sleeps advance
    in full — enough structure for the open-loop admission arithmetic."""

    def __init__(self, tick=0.0005):
        self.now = 0.0
        self.tick = tick

    def clock(self):
        self.now += self.tick
        return self.now

    def sleep(self, seconds):
        self.now += seconds


class TestLoadgenSim:
    def test_loadgen_completes_and_audits(self):
        service = ShardedKVService(service_config())
        fake = FakeTime()
        report = run_loadgen(
            service,
            clock=fake.clock,
            sleep=fake.sleep,
            rate=400.0,
            duration=1.0,
            sessions=50,
            keys=16,
            seed=3,
        )
        assert report["offered_ops"] > 100
        assert report["completed_ops"] == report["offered_ops"]
        assert report["incomplete_ops"] == 0
        assert report["sustained_fraction"] == 1.0
        assert report["audit"]["all_ok"]
        assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]

    def test_loadgen_same_seed_same_offered_stream(self):
        reports = []
        for _ in range(2):
            service = ShardedKVService(service_config())
            fake = FakeTime()
            reports.append(
                run_loadgen(
                    service,
                    clock=fake.clock,
                    sleep=fake.sleep,
                    rate=300.0,
                    duration=0.5,
                    sessions=20,
                    keys=8,
                    seed=11,
                )
            )
        a, b = reports
        assert a["offered_ops"] == b["offered_ops"]
        assert a["completed_ops"] == b["completed_ops"]
        assert a["latency_ms"] == b["latency_ms"]

    def test_loadgen_scenarios_fire_and_log(self):
        service = ShardedKVService(service_config())
        fake = FakeTime()
        report = run_loadgen(
            service,
            clock=fake.clock,
            sleep=fake.sleep,
            rate=300.0,
            duration=1.0,
            sessions=20,
            keys=8,
            seed=5,
            scenarios=[
                Scenario(0.3, "crash", lambda: service.crash_server(0) or "s0"),
            ],
        )
        assert [s["name"] for s in report["scenarios"]] == ["crash"]
        # f=1 tolerated: the run still completes and audits clean.
        assert report["audit"]["all_ok"]
        assert report["sustained_fraction"] == 1.0

    def test_loadgen_validates_inputs(self):
        service = ShardedKVService(service_config())
        fake = FakeTime()
        with pytest.raises(ValueError):
            run_loadgen(
                service, clock=fake.clock, sleep=fake.sleep, rate=0
            )
        with pytest.raises(ValueError):
            run_loadgen(
                service, clock=fake.clock, sleep=fake.sleep, sessions=0
            )
