"""The session API of :class:`repro.apps.kv.ReplicatedKVStore`.

Covers the redesigned client surface: session lifecycle, concurrent
sessions on one store, writer-bound enforcement, read-only sessions,
the deprecated ``writer_index`` shim, and :class:`KVConfig`'s eager
validation / cache-key duties.
"""

import pickle
import warnings

import pytest

from repro.apps.kv import KVConfig, KVSession, ReplicatedKVStore
from repro.errors import (
    QuorumUnavailable,
    ReproError,
    ShardCapacityExceeded,
    WriterBoundExceeded,
)


class TestSessionLifecycle:
    def test_session_put_get_delete(self):
        store = ReplicatedKVStore(substrate="max-register", n=3, f=1)
        with store.session(writer=0) as s:
            s.put("alpha", 1)
            assert s.get("alpha") == 1
            s.delete("alpha")
            assert s.get("alpha") is None
            assert s.get("alpha", default="gone") == "gone"

    def test_session_is_context_manager(self):
        store = ReplicatedKVStore(substrate="max-register", n=3, f=1)
        with store.session() as s:
            assert isinstance(s, KVSession)
            assert not s.closed
        assert s.closed

    def test_closed_session_refuses_operations(self):
        store = ReplicatedKVStore(substrate="max-register", n=3, f=1)
        s = store.session(writer=0)
        s.put("alpha", 1)
        s.close()
        with pytest.raises(RuntimeError):
            s.put("alpha", 2)
        with pytest.raises(RuntimeError):
            s.get("alpha")
        with pytest.raises(RuntimeError):
            s.delete("alpha")
        with pytest.raises(RuntimeError):
            s.scan()

    def test_scan_filters_by_prefix(self):
        store = ReplicatedKVStore(substrate="max-register", n=3, f=1)
        with store.session(writer=0) as s:
            s.put("user:1", "ada")
            s.put("user:2", "grace")
            s.put("cart:9", ["book"])
            assert s.scan("user:") == {"user:1": "ada", "user:2": "grace"}
            assert set(s.scan()) == {"user:1", "user:2", "cart:9"}


class TestConcurrentSessions:
    def test_many_sessions_one_store(self):
        store = ReplicatedKVStore(substrate="register", n=3, f=1, k_writers=4)
        sessions = [store.session(writer=i) for i in range(4)]
        for i, s in enumerate(sessions):
            s.put(f"key-{i}", f"v{i}")
        # Sessions see each other's writes immediately.
        with store.session() as reader:
            for i in range(4):
                assert reader.get(f"key-{i}") == f"v{i}"
        for s in sessions:
            s.close()

    def test_interleaved_writers_same_key_audit(self):
        store = ReplicatedKVStore(substrate="max-register", n=5, f=2)
        a = store.session(writer=0)
        b = store.session(writer=1)
        for round_index in range(3):
            a.put("shared", f"a{round_index}")
            b.put("shared", f"b{round_index}")
        assert store.get("shared") == "b2"
        assert all(store.audit().values())


class TestWriterBound:
    def test_out_of_range_writer_rejected_at_open(self):
        store = ReplicatedKVStore(substrate="register", n=3, f=1, k_writers=2)
        with pytest.raises(WriterBoundExceeded):
            store.session(writer=2)
        with pytest.raises(WriterBoundExceeded):
            store.session(writer=-1)

    def test_bound_error_is_still_a_value_error(self):
        store = ReplicatedKVStore(substrate="register", n=3, f=1, k_writers=2)
        with pytest.raises(ValueError):
            store.session(writer=99)

    def test_read_only_session_cannot_write(self):
        store = ReplicatedKVStore(substrate="max-register", n=3, f=1)
        with store.session(writer=0) as s:
            s.put("alpha", 1)
        with store.session(writer=None) as reader:
            assert reader.get("alpha") == 1
            with pytest.raises(WriterBoundExceeded):
                reader.put("alpha", 2)
            with pytest.raises(WriterBoundExceeded):
                reader.delete("alpha")


class TestDeprecatedShim:
    def test_put_with_writer_index_warns_and_works(self):
        store = ReplicatedKVStore(substrate="register", n=3, f=1, k_writers=3)
        with pytest.warns(DeprecationWarning, match="session"):
            store.put("alpha", 1, writer_index=2)
        assert store.get("alpha") == 1

    def test_delete_with_writer_index_warns_and_works(self):
        store = ReplicatedKVStore(substrate="max-register", n=3, f=1)
        with store.session(writer=0) as s:
            s.put("alpha", 1)
        with pytest.warns(DeprecationWarning, match="session"):
            store.delete("alpha")
        assert store.get("alpha") is None

    def test_session_path_does_not_warn(self):
        store = ReplicatedKVStore(substrate="max-register", n=3, f=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with store.session(writer=0) as s:
                s.put("alpha", 1)
                s.delete("alpha")


class TestQuorumFailureTyped:
    def test_too_many_crashes_raises_quorum_unavailable(self):
        store = ReplicatedKVStore(substrate="max-register", n=3, f=1)
        with store.session(writer=0) as s:
            s.put("alpha", 1)
            store.crash_server(0)
            store.crash_server(1)  # beyond f: the quorum is gone
            with pytest.raises(QuorumUnavailable):
                s.put("alpha", 2)

    def test_quorum_error_is_runtime_error_and_repro_error(self):
        store = ReplicatedKVStore(substrate="max-register", n=3, f=1)
        with store.session(writer=0) as s:
            s.put("alpha", 1)
            store.crash_server(0)
            store.crash_server(1)
            with pytest.raises(RuntimeError):
                s.get("alpha")
            store2 = ReplicatedKVStore(substrate="max-register", n=3, f=1)
            with store2.session(writer=0) as s2:
                s2.put("alpha", 1)
                store2.crash_server(0)
                store2.crash_server(1)
                with pytest.raises(ReproError):
                    s2.get("alpha")


class TestSharedFleetCapacityTyped:
    def test_full_fleet_raises_shard_capacity(self):
        config = KVConfig.make(
            "register", n=3, f=1, k_writers=2, shared_fleet=True, max_keys=2
        )
        store = ReplicatedKVStore(config)
        with store.session(writer=0) as s:
            s.put("a", 1)
            s.put("b", 2)
            with pytest.raises(ShardCapacityExceeded):
                s.put("c", 3)


class TestKVConfig:
    def test_make_classmethod(self):
        config = KVConfig.make("cas", n=5, f=2)
        assert config.substrate == "cas"
        assert (config.n, config.f) == (5, 2)

    def test_validation_is_eager(self):
        with pytest.raises(ValueError):
            KVConfig(substrate="bogus")
        with pytest.raises(ValueError):
            KVConfig(n=2, f=1)  # n < 2f+1
        with pytest.raises(ValueError):
            KVConfig(k_writers=0)
        with pytest.raises(ValueError):
            KVConfig(substrate="max-register", shared_fleet=True)
        with pytest.raises(ValueError):
            KVConfig(max_keys=0)

    def test_frozen(self):
        config = KVConfig()
        with pytest.raises(Exception):
            config.n = 99

    def test_picklable_and_hashable(self):
        config = KVConfig.make("register", n=3, f=1, k_writers=2)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert hash(clone) == hash(config)

    def test_cache_payload_round_trips_json(self):
        import json

        payload = KVConfig.make("max-register", n=5, f=2).cache_payload()
        assert json.loads(json.dumps(payload, sort_keys=True)) == payload
        assert payload["substrate"] == "max-register"

    def test_store_rejects_config_plus_overrides(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore(KVConfig(), n=3)
