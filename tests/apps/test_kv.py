"""Tests for the replicated KV store."""

import pytest

from repro.apps.kv import KVConfig, ReplicatedKVStore


class TestConfig:
    def test_defaults_valid(self):
        KVConfig().validate()

    def test_bad_substrate(self):
        with pytest.raises(ValueError):
            KVConfig(substrate="blockchain").validate()

    def test_too_few_servers(self):
        with pytest.raises(ValueError):
            KVConfig(n=4, f=2).validate()

    def test_bad_writer_count(self):
        with pytest.raises(ValueError):
            KVConfig(k_writers=0).validate()

    def test_config_xor_overrides(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore(KVConfig(), substrate="cas")


@pytest.mark.parametrize("substrate", ["register", "max-register", "cas"])
class TestBasicOperations:
    def test_put_get(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2, k_writers=2)
        store.session().put("alpha", 1)
        store.session(writer=1).put("beta", "two")
        assert store.get("alpha") == 1
        assert store.get("beta") == "two"

    def test_overwrite(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2, k_writers=2)
        store.session().put("key", "old")
        store.session(writer=1).put("key", "new")
        assert store.get("key") == "new"

    def test_missing_key_default(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2)
        assert store.get("ghost") is None
        assert store.get("ghost", default="dflt") == "dflt"

    def test_keys_listing(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2)
        store.session().put("b", 2)
        store.session().put("a", 1)
        assert store.keys() == ["a", "b"]

    def test_audit_clean(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2, k_writers=2)
        for i in range(3):
            store.session(writer=i % 2).put("key", f"v{i}")
            store.get("key")
        assert all(store.audit().values())


class TestSpaceAccounting:
    def test_table1_economics(self):
        """Per-key base-object budget follows Table 1."""
        n, f, k = 5, 2, 3
        budgets = {}
        for substrate in ("register", "max-register", "cas"):
            store = ReplicatedKVStore(
                substrate=substrate, n=n, f=f, k_writers=k
            )
            store.session().put("x", 1)
            budgets[substrate] = store.base_objects_per_key()["x"]
        assert budgets["max-register"] == 2 * f + 1
        assert budgets["cas"] == 2 * f + 1
        assert budgets["register"] == k * (2 * f + 1)  # n = 2f+1 regime

    def test_total_base_objects(self):
        store = ReplicatedKVStore(substrate="max-register", n=5, f=2)
        store.session().put("a", 1)
        store.session().put("b", 2)
        assert store.base_objects == 10

    def test_snapshot(self):
        store = ReplicatedKVStore(substrate="max-register", n=5, f=2)
        store.session().put("a", 1)
        store.session().put("b", 2)
        store.session().put("a", 3)
        assert store.snapshot() == {"a": 3, "b": 2}

    def test_snapshot_empty_store(self):
        store = ReplicatedKVStore(substrate="cas", n=5, f=2)
        assert store.snapshot() == {}


@pytest.mark.parametrize("substrate", ["register", "max-register", "cas"])
class TestDelete:
    def test_delete_then_get_default(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2, k_writers=2)
        store.session().put("key", "value")
        store.session(writer=1).delete("key")
        assert store.get("key") is None
        assert store.get("key", default="gone") == "gone"

    def test_delete_unknown_key_noop(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2)
        store.session().delete("ghost")
        assert store.keys() == []

    def test_rewrite_after_delete(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2, k_writers=2)
        store.session().put("key", "v1")
        store.session().delete("key")
        store.session(writer=1).put("key", "v2")
        assert store.get("key") == "v2"

    def test_snapshot_omits_deleted(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2, k_writers=2)
        store.session().put("keep", 1)
        store.session(writer=1).put("drop", 2)
        store.session().delete("drop")
        assert store.snapshot() == {"keep": 1}
        assert all(store.audit().values())


class TestFaultTolerance:
    @pytest.mark.parametrize("substrate", ["register", "max-register", "cas"])
    def test_survives_f_crashes(self, substrate):
        store = ReplicatedKVStore(substrate=substrate, n=5, f=2, k_writers=2)
        store.session().put("key", "before")
        store.crash_server(0)
        store.crash_server(3)
        assert store.get("key") == "before"
        store.session(writer=1).put("key", "after")
        assert store.get("key") == "after"
        assert all(store.audit().values())

    def test_writer_index_validated(self):
        store = ReplicatedKVStore(substrate="register", n=5, f=2, k_writers=2)
        with pytest.raises(ValueError):
            store.session(writer=5).put("key", 1)

    def test_crash_index_validated(self):
        store = ReplicatedKVStore(substrate="register", n=5, f=2)
        with pytest.raises(ValueError):
            store.crash_server(9)
