"""Tests for the shared-fleet KV deployment mode."""

import pytest

from repro.apps.kv import KVConfig, ReplicatedKVStore


def _store(max_keys=4, seed=0):
    return ReplicatedKVStore(
        substrate="register",
        n=5,
        f=2,
        k_writers=2,
        seed=seed,
        shared_fleet=True,
        max_keys=max_keys,
    )


class TestConfig:
    def test_shared_requires_register_substrate(self):
        with pytest.raises(ValueError):
            KVConfig(substrate="cas", shared_fleet=True).validate()

    def test_max_keys_validated(self):
        with pytest.raises(ValueError):
            KVConfig(
                substrate="register", shared_fleet=True, max_keys=0
            ).validate()


class TestSharedOperations:
    def test_put_get_multiple_keys(self):
        store = _store()
        store.session().put("a", 1)
        store.session(writer=1).put("b", 2)
        assert store.get("a") == 1
        assert store.get("b") == 2
        assert all(store.audit().values())

    def test_key_capacity_enforced(self):
        store = _store(max_keys=2)
        store.session().put("a", 1)
        store.session().put("b", 2)
        with pytest.raises(RuntimeError):
            store.session().put("c", 3)

    def test_single_crash_event_hits_all_keys(self):
        store = _store(seed=3)
        store.session().put("a", "x")
        store.session().put("b", "y")
        store.crash_server(0)
        # The shared object map shows exactly one crashed server...
        fleet = store._fleet
        assert len(fleet.object_map.crashed_servers) == 1
        # ...and both keys keep working.
        assert store.get("a") == "x"
        store.session(writer=1).put("b", "y2")
        assert store.get("b") == "y2"

    def test_space_accounting_per_key(self):
        store = _store()
        store.session().put("a", 1)
        per_key = store.base_objects_per_key()
        # k=2 writers, n=5, f=2 at n=2f+1: k(2f+1) = 10 per key.
        assert per_key["a"] == 10
        assert store.base_objects == 10
        store.session().put("b", 2)
        assert store.base_objects == 20

    def test_fleet_total_provisioned_up_front(self):
        store = _store(max_keys=3)
        assert store._fleet.total_registers == 3 * 10

    def test_snapshot_and_audit(self):
        store = _store(seed=5)
        store.session().put("k1", "v1")
        store.session().put("k2", "v2")
        store.session(writer=1).put("k1", "v1b")
        assert store.snapshot() == {"k1": "v1b", "k2": "v2"}
        assert all(store.audit().values())

    def test_survives_f_crashes(self):
        store = _store(seed=7)
        store.session().put("a", "before")
        store.crash_server(1)
        store.crash_server(3)
        assert store.get("a") == "before"
        store.session(writer=1).put("a", "after")
        assert store.get("a") == "after"
        assert all(store.audit().values())
