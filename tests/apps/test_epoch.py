"""Tests for the epoch service."""

import pytest

from repro.apps.epoch import EpochService
from repro.sim.scheduling import RandomScheduler


class TestEpochService:
    def test_starts_at_zero(self):
        service = EpochService(n=5, f=2, scheduler=RandomScheduler(0))
        assert service.current() == 0

    def test_advance_increments(self):
        service = EpochService(n=5, f=2, scheduler=RandomScheduler(1))
        assert service.advance() == 1
        assert service.advance() == 2
        assert service.current() == 2

    def test_propose_monotone(self):
        service = EpochService(n=5, f=2, scheduler=RandomScheduler(2))
        service.propose(10)
        service.propose(4)  # stale proposal must not regress the epoch
        assert service.current() == 10

    def test_propose_negative_rejected(self):
        service = EpochService(n=5, f=2)
        with pytest.raises(ValueError):
            service.propose(-1)

    def test_multiple_processes_converge(self):
        service = EpochService(n=5, f=2, scheduler=RandomScheduler(3))
        service.advance(process=0)
        service.advance(process=1)
        service.advance(process=2)
        # All processes observe the same, maximal epoch.
        assert service.current(process=0) == 3
        assert service.current(process=7) == 3

    def test_survives_f_crashes(self):
        service = EpochService(n=5, f=2, scheduler=RandomScheduler(4))
        service.advance()
        service.crash_server(1)
        service.crash_server(4)
        assert service.advance() == 2
        assert service.current() == 2

    def test_space_bound(self):
        assert EpochService(n=5, f=2).base_objects == 5
        assert EpochService(n=7, f=3).base_objects == 7

    def test_epochs_never_regress_across_observers(self):
        service = EpochService(n=5, f=2, scheduler=RandomScheduler(5))
        seen = []
        for round_index in range(4):
            service.advance(process=round_index)
            seen.append(service.current(process=99))
        assert seen == sorted(seen)
