"""CI bench-regression smoke: ratio metrics must not regress >20%.

Runs the perf benchmarks (kernel hot path, transport seam, wire
codec/pipelining, sharded-KV loadgen) in their smoke modes and compares every
*machine-portable* metric against the checked-in ``BENCH_*.json``
artifacts.  Absolute steps/sec and ops/sec are not comparable across
machines, so only same-process ratios are checked — speedups of one
implementation over another measured in the same run:

* ``BENCH_kernel.json`` — per-config ``speedup`` / ``batched_speedup``
  / ``dispatch_speedup`` (incremental, batched and dispatch-table
  stepping vs the legacy from-scratch loop);
* ``BENCH_transport.json`` — ``vs_baseline`` for the ``inproc`` and
  ``lossy-idle`` transports (``lossy-chaos`` does real per-message
  fault work and swings too much on shared runners to gate on);
* ``BENCH_wire.json`` — ``vs_per_leg_json`` for the two pipelined
  entries plus the end-to-end ``emulation`` ratio;
* ``BENCH_kv.json`` — ``sustained_fraction`` (completed / offered ops
  across the fault gauntlet) and the per-key ``audit.ok_fraction``.
  Both are dimensionless fractions of the same run, recorded at 1.0;
  a consistency violation or lost operations fail the gate outright.

A metric fails the gate when the fresh smoke value drops below
``(1 - tolerance)`` of the recorded one; faster-than-recorded is never
an error.  In-process ratios gate at 20%.  The wire bench's ratios
cross process boundaries — their denominators are a few hundred
serial localhost RTTs, which jitter far more than 20% on shared CI
runners — so they gate at 40% (the bench's own smoke-mode assertions
already enforce absolute minima of 3x pipelining / 1.2x end-to-end on
top of that).  The benchmarks rewrite their artifact files as they run, so
the recorded (golden) values are loaded *first* and the files restored
afterwards — the checked-in numbers always reflect a full-mode run,
never the smoke run this script triggers.

Usage::

    python scripts/ci_bench_smoke.py [--report bench-smoke.json]
"""

import argparse
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_DIR = os.path.join(REPO, "benchmarks")

#: dropping >20% below the recorded ratio fails the job (in-process).
TOLERANCE = 0.20
#: cross-process RTT denominators jitter more on shared runners.
WIRE_TOLERANCE = 0.40
#: the KV fractions are correctness-shaped (recorded at 1.0); a small
#: allowance covers ops stranded by the bounded drain window on a
#: heavily loaded runner, nothing more.
KV_TOLERANCE = 0.02

#: bench module -> (artifact file, smoke env var, tolerance)
BENCHES = {
    "test_bench_kernel_hotpath.py": (
        "BENCH_kernel.json", "BENCH_KERNEL_SMOKE", TOLERANCE
    ),
    "test_bench_transport.py": (
        "BENCH_transport.json", "BENCH_TRANSPORT_SMOKE", TOLERANCE
    ),
    "test_bench_wire.py": (
        "BENCH_wire.json", "BENCH_WIRE_SMOKE", WIRE_TOLERANCE
    ),
    "test_bench_kv.py": (
        "BENCH_kv.json", "BENCH_KV_SMOKE", KV_TOLERANCE
    ),
}


def _ratio_metrics(artifact: dict) -> "dict[str, float]":
    """Flatten the machine-portable ratios out of one artifact."""
    metrics = {}
    name = artifact.get("benchmark", "")
    if name == "kernel_hotpath":
        for config, numbers in artifact["configs"].items():
            for key in ("speedup", "batched_speedup", "dispatch_speedup"):
                metrics[f"{config}.{key}"] = numbers[key]
    elif name == "transport_seam":
        for transport in ("inproc", "lossy-idle"):
            metrics[f"{transport}.vs_baseline"] = (
                artifact["transports"][transport]["vs_baseline"]
            )
    elif name == "wire_codec_pipelining":
        for entry in ("pipelined-json", "pipelined-binary"):
            metrics[f"wire.{entry}.vs_per_leg_json"] = (
                artifact["wire"][entry]["vs_per_leg_json"]
            )
        metrics["emulation.pipelined-binary.vs_per_leg_json"] = (
            artifact["emulation"]["pipelined-binary"]["vs_per_leg_json"]
        )
    elif name == "kv_loadgen":
        metrics["kv.sustained_fraction"] = artifact["sustained_fraction"]
        metrics["kv.audit_ok_fraction"] = artifact["audit"]["ok_fraction"]
    else:
        raise SystemExit(f"unknown benchmark artifact: {name!r}")
    return metrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--report", default="bench-smoke.json",
        help="where to write the JSON comparison report",
    )
    args = parser.parse_args()

    report = {"benches": {}}
    regressions = []
    for module, (artifact_name, smoke_var, tolerance) in BENCHES.items():
        artifact_path = os.path.join(BENCH_DIR, artifact_name)
        with open(artifact_path, encoding="utf-8") as handle:
            golden_raw = handle.read()
        golden = _ratio_metrics(json.loads(golden_raw))

        env = dict(os.environ)
        env[smoke_var] = "1"
        env.setdefault(
            "PYTHONPATH", os.path.join(REPO, "src")
        )
        try:
            subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "pytest",
                    os.path.join(BENCH_DIR, module),
                    "-q",
                ],
                cwd=REPO,
                env=env,
                check=True,
            )
            with open(artifact_path, encoding="utf-8") as handle:
                fresh = _ratio_metrics(json.load(handle))
        finally:
            # the smoke run overwrote the artifact; the checked-in
            # numbers are the full-mode golden, put them back.
            with open(artifact_path, "w", encoding="utf-8") as handle:
                handle.write(golden_raw)

        rows = {"tolerance": tolerance}
        for key, recorded in sorted(golden.items()):
            measured = fresh[key]
            floor = recorded * (1.0 - tolerance)
            ok = measured >= floor
            rows[key] = {
                "recorded": recorded,
                "measured": measured,
                "floor": round(floor, 3),
                "ok": ok,
            }
            if not ok:
                regressions.append(
                    f"{module}: {key} measured {measured} <"
                    f" {floor:.3f} (recorded {recorded},"
                    f" tolerance {tolerance:.0%})"
                )
        report["benches"][module] = rows

    with open(args.report, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    if regressions:
        raise SystemExit(
            "bench ratio regressions:\n  " + "\n  ".join(regressions)
        )
    print("bench smoke: all ratio metrics within tolerance")


if __name__ == "__main__":
    main()
