"""CI lossy-transport smoke: safety + cross-process reproducibility.

Runs a small seeded fault-injection scenario (drops + reorder + one
partition/heal cycle) on :class:`~repro.net.lossy.LossyTransport` and
asserts (a) the captured history is linearizable under every seed and
(b) the run replays byte-identically **across process boundaries**.

The cross-process part is the point: fault fates are derived from
``hash()`` of an all-int tuple, which is the one tuple shape Python
hashes identically regardless of the per-process str-hash salt
(``PYTHONHASHSEED``).  Re-running inside one interpreter would share a
single salt and could never detect a regression that sneaks a string
into the hashed key — so the driver execs each measurement in a fresh
``sys.executable`` child and compares the digests the children print.
A stable digest here also makes the uploaded ``lossy-smoke.json``
artifact comparable across CI runs.

Usage::

    python scripts/ci_lossy_smoke.py            # driver: all seeds, twice each
    python scripts/ci_lossy_smoke.py --seed 2   # child: one run, JSON on stdout
"""

import argparse
import hashlib
import json
import subprocess
import sys

from repro.consistency.linearizability import is_linearizable
from repro.consistency.specs import RegisterSpec
from repro.core.emulation import EmulationSpec
from repro.net import (
    Delay,
    Drop,
    FaultPlan,
    LinkFaults,
    Partition,
    Reorder,
    TransportConfig,
)

SEEDS = (0, 1, 2)

PLAN = FaultPlan(
    default=LinkFaults(
        drop=Drop(0.1),
        delay=Delay(0, 10),
        reorder=Reorder(0.3, window=8),
    ),
    partitions=(Partition(start=10, heal=80, servers=(1,)),),
)


def run_one(seed: int) -> dict:
    """One seeded lossy run: history digest + transport counters."""
    spec = EmulationSpec.make(
        "abd", n=3, f=1, seed=seed,
        transport=TransportConfig.lossy(PLAN, seed=seed),
    )
    emu = spec.build()
    writer, reader = emu.add_writer(0), emu.add_reader()
    for i in range(3):
        writer.enqueue("write", f"v{i}")
        reader.enqueue("read")
        emu.system.run_to_quiescence(max_steps=200_000)
    ops = emu.history.all_ops()
    assert is_linearizable(ops, RegisterSpec(None)), (
        f"seed {seed}: history not linearizable under faults"
    )
    blob = json.dumps(emu.history.to_dicts(), sort_keys=True).encode()
    return {
        "history_sha256": hashlib.sha256(blob).hexdigest(),
        "stats": emu.kernel.transport.stats(),
    }


def run_in_subprocess(seed: int) -> dict:
    """Run one seed in a fresh interpreter (fresh hash salt)."""
    result = subprocess.run(
        [sys.executable, __file__, "--seed", str(seed)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(result.stdout)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seed", type=int, default=None,
        help="child mode: run this one seed and print JSON",
    )
    parser.add_argument(
        "--report", default="lossy-smoke.json",
        help="driver mode: where to write the JSON report",
    )
    args = parser.parse_args()

    if args.seed is not None:
        print(json.dumps(run_one(args.seed)))
        return

    report = {"plan": repr(PLAN), "seeds": {}}
    totals = {}
    for seed in SEEDS:
        first = run_in_subprocess(seed)
        second = run_in_subprocess(seed)
        assert first["history_sha256"] == second["history_sha256"], (
            f"seed {seed} did not replay identically across processes:"
            f" {first['history_sha256']} != {second['history_sha256']}"
        )
        assert first["stats"] == second["stats"], (
            f"seed {seed}: transport counters diverged across processes"
        )
        report["seeds"][str(seed)] = first
        for key, value in first["stats"].items():
            totals[key] = totals.get(key, 0) + value
    assert totals["held_by_partition"] > 0
    assert totals["dropped_requests"] + totals["dropped_responses"] > 0
    assert totals["reordered"] > 0
    report["totals"] = totals
    with open(args.report, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(json.dumps(totals, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
