#!/usr/bin/env python
"""CI smoke: two concurrent workers drain one shared queue file.

The distributed-queue contract, checked end-to-end over real processes:

1. ``repro queue create`` enqueues two grids (TH1 and TH2) into one
   sqlite file — 10 cells total.
2. Two ``repro queue work`` subprocesses run *concurrently* against
   that file.
3. Afterwards: every cell is ``done``, none ``failed``, every cell was
   claimed exactly once (``attempts == 1`` — zero duplicate
   executions), and every claim belongs to one of the two workers
   (disjoint by construction: a cell has one owner column, attempts==1
   proves no second worker ever re-claimed it).
4. ``repro queue export`` output is byte-identical to the serial
   in-process rendering of the same experiments.

Writes ``queue-smoke.json`` with the evidence for the artifact upload.
Exits non-zero on any violation.
"""

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def repro(*argv):
    process = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
    )
    if process.returncode != 0:
        sys.exit(
            f"`repro {' '.join(argv)}` exited {process.returncode}:\n"
            f"{process.stdout}{process.stderr}"
        )
    return process.stdout


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="queue-smoke-")
    db = os.path.join(workdir, "q.db")

    repro("queue", "create", "--db", db, "TH1",
          "--params", '{"k": 3, "f": 1}')
    repro("queue", "create", "--db", db, "TH2")

    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "queue", "work", "--db", db,
             "--worker-id", name, "--no-cache"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        for name in ("w1", "w2")
    ]
    logs = {}
    for name, worker in zip(("w1", "w2"), workers):
        out, _ = worker.communicate(timeout=600)
        logs[name] = out
        if worker.returncode != 0:
            sys.exit(f"worker {name} exited {worker.returncode}:\n{out}")

    status = json.loads(repro("queue", "status", "--db", db, "--json"))
    failures = []
    counts = status["counts"]
    if counts["open"] or counts["claimed"] or counts["failed"]:
        failures.append(f"queue not cleanly drained: {counts}")
    duplicates = [
        cell["cell_id"] for cell in status["cells"]
        if cell["attempts"] != 1
    ]
    if duplicates:
        failures.append(f"cells claimed more than once: {duplicates}")
    strangers = [
        cell["cell_id"] for cell in status["cells"]
        if cell["owner"] not in ("w1", "w2")
    ]
    if strangers:
        failures.append(f"cells owned by neither worker: {strangers}")

    from repro.experiments import run_experiment

    golden = (
        run_experiment("TH1", k=3, f=1).render()
        + "\n\n"
        + run_experiment("TH2").render()
        + "\n"
    )
    exported = repro("queue", "export", "--db", db)
    if exported != golden:
        failures.append(
            "queue export differs from the serial rendering:\n"
            f"--- serial ---\n{golden}--- queue ---\n{exported}"
        )

    per_worker = {}
    for cell in status["cells"]:
        per_worker[cell["owner"]] = per_worker.get(cell["owner"], 0) + 1
    report = {
        "cells": len(status["cells"]),
        "counts": counts,
        "cells_per_worker": per_worker,
        "duplicate_claims": duplicates,
        "export_byte_identical": exported == golden,
        "failures": failures,
    }
    with open("queue-smoke.json", "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)

    print(f"queue smoke: {len(status['cells'])} cells, split {per_worker}")
    for name in ("w1", "w2"):
        summary = [
            line for line in logs[name].splitlines()
            if line.startswith("worker ")
        ]
        print(summary[-1] if summary else f"worker {name}: no summary")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("queue smoke: drained cleanly, export byte-identical to serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
