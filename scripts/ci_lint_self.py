"""CI lint-self smoke: the linter lints this repo and its SARIF is valid.

Three assertions, end to end through the real CLI surface:

1. ``repro lint src/`` exits 0 — no active findings, no stale baseline
   entries (the same gate as ``tests/lint/test_self_clean.py``, run here
   against the installed package rather than the source tree).
2. The SARIF the CLI emits for ``src/`` validates against the embedded
   SARIF 2.1.0 schema slice, every result's ``ruleId`` resolves into the
   rule catalog, and every baselined finding carries an ``external``
   suppression with a justification (GitHub's code-scanning UI shows
   these as "suppressed in baseline" instead of open alerts).
3. The parallel path (``--jobs``) produces byte-identical SARIF to the
   sequential path — chunking must never reorder or renumber findings,
   or fingerprints drift and the baseline rots.

Usage::

    python scripts/ci_lint_self.py [--out lint.sarif]
"""

import argparse
import json
import subprocess
import sys


def run_lint(*argv: str) -> "subprocess.CompletedProcess":
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src/", *argv],
        capture_output=True,
        text=True,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default="lint.sarif",
        help="where to write the validated SARIF log",
    )
    args = parser.parse_args()

    gate = run_lint()
    assert gate.returncode == 0, (
        f"repro lint src/ exited {gate.returncode}:\n{gate.stdout}"
    )

    sarif = run_lint("--format", "sarif")
    assert sarif.returncode == 0, (
        f"--format sarif exited {sarif.returncode}:\n{sarif.stderr}"
    )
    payload = json.loads(sarif.stdout)

    from repro.lint import validate_sarif

    errors = validate_sarif(payload)
    assert not errors, "SARIF failed validation:\n" + "\n".join(errors)

    run = payload["runs"][0]
    catalog = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    baselined = 0
    for result in run["results"]:
        assert result["ruleId"] in catalog
        for suppression in result.get("suppressions", ()):
            if suppression["kind"] == "external":
                baselined += 1
                assert suppression.get("justification"), (
                    f"baselined finding without a justification: {result}"
                )

    parallel = run_lint("--format", "sarif", "--jobs", "4")
    assert parallel.stdout == sarif.stdout, (
        "--jobs 4 SARIF differs from the sequential run"
    )

    with open(args.out, "w") as handle:
        handle.write(sarif.stdout)
    print(
        f"lint-self ok: {len(run['results'])} result(s),"
        f" {baselined} baselined with justifications,"
        f" {len(catalog)} rules in catalog, parallel run identical"
    )


if __name__ == "__main__":
    main()
